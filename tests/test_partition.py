"""Tests for ruleset partitioning across string matching blocks."""

import pytest

from repro.core import partition_ruleset
from repro.rulesets import RuleSet


def test_single_group_is_identity(small_ruleset):
    plan = partition_ruleset(small_ruleset, 1)
    assert plan.num_groups == 1
    assert len(plan.groups[0]) == len(small_ruleset)


@pytest.mark.parametrize("strategy", ["prefix", "balanced"])
@pytest.mark.parametrize("groups", [2, 3, 4])
def test_partition_preserves_all_rules(small_ruleset, strategy, groups):
    plan = partition_ruleset(small_ruleset, groups, strategy=strategy)
    assert plan.num_groups == groups
    recovered = sorted(pattern for group in plan.groups for pattern in group.patterns)
    assert recovered == sorted(small_ruleset.patterns)
    assert all(len(group) > 0 for group in plan.groups)


def test_balanced_partition_is_roughly_even(medium_ruleset):
    plan = partition_ruleset(medium_ruleset, 4, strategy="balanced")
    assert plan.imbalance() < 1.1


def test_prefix_partition_keeps_first_bytes_together(small_ruleset):
    plan = partition_ruleset(small_ruleset, 2, strategy="prefix")
    # a first byte should rarely appear in more than one group; only clusters
    # that were split for balance may cross groups
    byte_groups = {}
    for index, group in enumerate(plan.groups):
        for rule in group:
            byte_groups.setdefault(rule.pattern[0], set()).add(index)
    crossing = sum(1 for groups in byte_groups.values() if len(groups) > 1)
    assert crossing <= len(byte_groups) // 4


def test_prefix_partition_shares_fewer_states_than_balanced(medium_ruleset):
    from repro.automata import Trie

    def total_states(plan):
        return sum(Trie.from_patterns(group.patterns).num_states for group in plan.groups)

    prefix_states = total_states(partition_ruleset(medium_ruleset, 3, strategy="prefix"))
    balanced_states = total_states(partition_ruleset(medium_ruleset, 3, strategy="balanced"))
    assert prefix_states <= balanced_states


def test_partition_validation(small_ruleset):
    with pytest.raises(ValueError):
        partition_ruleset(small_ruleset, 0)
    with pytest.raises(ValueError):
        partition_ruleset(small_ruleset, len(small_ruleset) + 1)
    with pytest.raises(ValueError):
        partition_ruleset(small_ruleset, 2, strategy="bogus")
    with pytest.raises(ValueError):
        partition_ruleset(RuleSet(name="empty"), 1)


def test_group_characters_and_sizes(small_ruleset):
    plan = partition_ruleset(small_ruleset, 3)
    assert sum(plan.group_sizes()) == len(small_ruleset)
    assert sum(plan.group_characters()) == small_ruleset.total_characters
