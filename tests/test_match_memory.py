"""Tests for the 2,048 x 27-bit matching-string-number memory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MATCH_MEMORY_WORDS, MATCH_WORD_BITS, MatchMemory, MatchMemoryError
from repro.core.match_memory import EMPTY_SLOT, MAX_STRING_NUMBER


def test_geometry_matches_paper():
    assert MATCH_MEMORY_WORDS == 2048
    assert MATCH_WORD_BITS == 27


def test_single_match_list():
    memory = MatchMemory.build({5: [42]})
    address = memory.address_of(5)
    assert address == 0
    assert memory.read_list(address) == [42]
    assert memory.words_read(address) == 1
    assert memory.used_words == 1


def test_two_numbers_share_a_word():
    memory = MatchMemory.build({5: [1, 2]})
    assert memory.used_words == 1
    assert memory.read_list(0) == [1, 2]


def test_long_list_spans_words_until_stop_bit():
    memory = MatchMemory.build({7: [10, 20, 30, 40, 50]})
    assert memory.used_words == 3
    assert memory.read_list(0) == [10, 20, 30, 40, 50]
    assert memory.words_read(0) == 3


def test_multiple_states_get_disjoint_regions():
    memory = MatchMemory.build({1: [100], 2: [200, 201], 9: [300, 301, 302]})
    lists = [memory.read_list(memory.address_of(state)) for state in (1, 2, 9)]
    assert lists == [[100], [200, 201], [300, 301, 302]]


def test_capacity_overflow_raises():
    too_many = {state: [state] for state in range(MATCH_MEMORY_WORDS + 1)}
    with pytest.raises(MatchMemoryError):
        MatchMemory.build(too_many)


def test_string_number_range_checked():
    with pytest.raises(MatchMemoryError):
        MatchMemory.build({0: [MAX_STRING_NUMBER + 1]})
    MatchMemory.build({0: [MAX_STRING_NUMBER]})  # boundary value is fine


def test_memory_accounting_full_vs_used():
    memory = MatchMemory.build({1: [5, 6, 7]})
    assert memory.memory_bits() == MATCH_MEMORY_WORDS * MATCH_WORD_BITS
    assert memory.memory_bits(count_full_capacity=False) == memory.used_words * MATCH_WORD_BITS
    assert 0.0 < memory.utilisation() < 1.0


def test_encode_decode_words():
    memory = MatchMemory.build({3: [11, 22, 33]})
    images = memory.encode_words()
    assert len(images) == memory.used_words
    decoded = [MatchMemory.decode_word(image) for image in images]
    assert decoded[0] == (11, 22, False)
    assert decoded[1] == (33, EMPTY_SLOT, True)
    assert all(image < (1 << MATCH_WORD_BITS) for image in images)


def test_empty_match_lists_are_skipped():
    memory = MatchMemory.build({1: [], 2: [9]})
    assert memory.address_of(1) is None
    assert memory.address_of(2) == 0


def test_read_list_bad_address():
    memory = MatchMemory.build({1: [1]})
    with pytest.raises(IndexError):
        memory.read_list(5)


@settings(max_examples=30, deadline=None)
@given(
    lists=st.dictionaries(
        keys=st.integers(min_value=0, max_value=500),
        values=st.lists(st.integers(min_value=0, max_value=MAX_STRING_NUMBER), min_size=1, max_size=7),
        min_size=1,
        max_size=40,
    )
)
def test_roundtrip_property(lists):
    memory = MatchMemory.build(lists)
    for state, numbers in lists.items():
        address = memory.address_of(state)
        assert memory.read_list(address) == list(numbers)
    # words used is the sum of per-state ceil(len/2)
    expected_words = sum((len(numbers) + 1) // 2 for numbers in lists.values())
    assert memory.used_words == expected_words
