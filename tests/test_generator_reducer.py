"""Tests for synthetic ruleset generation and distribution-preserving reduction."""

import pytest

from repro.automata import Trie
from repro.rulesets import (
    FIGURE6_DISTRIBUTION,
    ContentModelConfig,
    PatternRule,
    RuleSet,
    generate_paper_rulesets,
    generate_snort_like_ruleset,
    reduce_ruleset,
    reduce_to_character_count,
)


def _length_strata(spec):
    """Distinct rules laid out as ``{length: population}`` strata."""
    rules = []
    sid = 1
    for length in sorted(spec):
        for k in range(spec[length]):
            rules.append(PatternRule(pattern=bytes([65 + k]) * length, sid=sid))
            sid += 1
    return rules


class TestGenerator:
    def test_deterministic_for_seed(self):
        first = generate_snort_like_ruleset(80, seed=11)
        second = generate_snort_like_ruleset(80, seed=11)
        assert first.patterns == second.patterns

    def test_different_seeds_differ(self):
        assert (
            generate_snort_like_ruleset(80, seed=11).patterns
            != generate_snort_like_ruleset(80, seed=12).patterns
        )

    def test_requested_size_and_uniqueness(self, small_ruleset):
        assert len(small_ruleset) == 120
        assert len(set(small_ruleset.patterns)) == 120

    def test_length_distribution_followed(self, medium_ruleset):
        counts = FIGURE6_DISTRIBUTION.expected_counts(len(medium_ruleset))
        histogram = medium_ruleset.length_histogram()
        assert histogram == counts

    def test_no_pattern_is_substring_of_another(self, small_ruleset):
        patterns = small_ruleset.patterns
        for i, needle in enumerate(patterns):
            for j, haystack in enumerate(patterns):
                if i != j:
                    assert needle not in haystack

    def test_branching_caps_respected(self, medium_ruleset):
        trie = Trie.from_patterns(medium_ruleset.patterns)
        for state in range(1, trie.num_states):
            fanout = len(trie.children[state])
            if trie.depth[state] == 1:
                assert fanout <= 9
            elif trie.depth[state] == 2:
                assert fanout <= 5
            else:
                assert fanout <= 6

    def test_mostly_printable_starting_bytes(self, medium_ruleset):
        printable = sum(1 for p in medium_ruleset.patterns if 0x20 <= p[0] < 0x7F)
        assert printable / len(medium_ruleset) > 0.8

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            generate_snort_like_ruleset(0)
        with pytest.raises(ValueError):
            ContentModelConfig(ascii_probability=0.9, binary_probability=0.9, mixed_probability=0.1)
        with pytest.raises(ValueError):
            ContentModelConfig(token_start_probability=1.5)

    def test_paper_family_sizes(self):
        family = generate_paper_rulesets(sizes=(100, 200), seed=4)
        assert set(family) == {100, 200}
        assert len(family[100]) == 100
        assert len(family[200]) == 200
        # the smaller set is extracted from the larger one
        assert set(family[100].patterns) <= set(family[200].patterns)


class TestReducer:
    def test_reduce_preserves_length_distribution(self, medium_ruleset):
        reduced = reduce_ruleset(medium_ruleset, 100, seed=3)
        assert len(reduced) == 100
        original_histogram = medium_ruleset.bucketed_histogram()
        reduced_histogram = reduced.bucketed_histogram()
        for bucket, count in reduced_histogram.items():
            expected = original_histogram[bucket] * 100 / len(medium_ruleset)
            assert abs(count - expected) <= 3

    def test_reduce_is_subset(self, medium_ruleset):
        reduced = reduce_ruleset(medium_ruleset, 50, seed=9)
        assert set(reduced.patterns) <= set(medium_ruleset.patterns)

    def test_reduce_full_size_is_copy(self, small_ruleset):
        same = reduce_ruleset(small_ruleset, len(small_ruleset))
        assert sorted(same.patterns) == sorted(small_ruleset.patterns)

    def test_reduce_validation(self, small_ruleset):
        with pytest.raises(ValueError):
            reduce_ruleset(small_ruleset, 0)
        with pytest.raises(ValueError):
            reduce_ruleset(small_ruleset, len(small_ruleset) + 1)

    def test_reduce_deterministic(self, medium_ruleset):
        assert (
            reduce_ruleset(medium_ruleset, 77, seed=5).patterns
            == reduce_ruleset(medium_ruleset, 77, seed=5).patterns
        )

    def test_reduce_near_saturation_keeps_strata_proportional(self):
        # target 8 of 9: every stratum floors to 2, and the two-unit
        # remainder saturates the two shortest strata (fraction tie broken
        # by length), leaving the longest one short
        ruleset = RuleSet(_length_strata({3: 3, 4: 3, 5: 3}), name="sat")
        reduced = reduce_ruleset(ruleset, 8, seed=0)
        assert len(reduced) == 8
        assert reduced.length_histogram() == {3: 3, 4: 3, 5: 2}

    def test_reduce_fraction_tie_breaks_by_length(self):
        # all three strata have fractional part 1/3; the single remainder
        # unit must land on the shortest stratum, for every seed
        ruleset = RuleSet(_length_strata({3: 3, 4: 3, 5: 3}), name="tie")
        for seed in (0, 1, 99):
            assert reduce_ruleset(ruleset, 7, seed=seed).length_histogram() == {
                3: 3, 4: 2, 5: 2,
            }

    def test_reduce_to_single_rule(self):
        ruleset = RuleSet(_length_strata({3: 2, 5: 2}), name="one")
        reduced = reduce_ruleset(ruleset, 1, seed=4)
        assert reduced.length_histogram() == {3: 1}

    def test_reduce_insertion_order_invariant(self):
        # the same rule multiset presented in opposite insertion orders must
        # keep identical per-stratum counts — tie-breaks depend on stratum
        # length, never on dict insertion order
        rules = _length_strata({2: 4, 6: 5, 9: 3})
        forward = RuleSet(list(rules), name="fwd")
        backward = RuleSet(list(reversed(rules)), name="bwd")
        for target in (1, 5, 11):
            assert (
                reduce_ruleset(forward, target, seed=8).length_histogram()
                == reduce_ruleset(backward, target, seed=8).length_histogram()
            )

    def test_reduce_to_character_count(self, medium_ruleset):
        target = 2000
        reduced = reduce_to_character_count(medium_ruleset, target, seed=2)
        assert set(reduced.patterns) <= set(medium_ruleset.patterns)
        # within one maximum pattern length of the requested count
        longest = max(len(p) for p in medium_ruleset.patterns)
        assert target <= reduced.total_characters <= target + longest

    def test_reduce_to_character_count_full(self, small_ruleset):
        everything = reduce_to_character_count(small_ruleset, small_ruleset.total_characters + 10)
        assert len(everything) == len(small_ruleset)

    def test_reduce_to_character_count_validation(self, small_ruleset):
        with pytest.raises(ValueError):
            reduce_to_character_count(small_ruleset, 0)
