"""Tests for the KMP / Boyer-Moore single-pattern baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata.single_pattern import BoyerMoore, KnuthMorrisPratt, NaiveMultiPattern


def naive_find_all(pattern, data, pattern_id=0):
    out = []
    start = 0
    while True:
        index = data.find(pattern, start)
        if index < 0:
            return out
        out.append((index + len(pattern), pattern_id))
        start = index + 1


@pytest.mark.parametrize("matcher_class", [KnuthMorrisPratt, BoyerMoore])
class TestSinglePattern:
    def test_simple(self, matcher_class):
        matcher = matcher_class(b"abc")
        assert matcher.match(b"xxabcxxabc") == [(5, 0), (10, 0)]

    def test_overlapping(self, matcher_class):
        matcher = matcher_class(b"aa")
        assert matcher.match(b"aaaa") == [(2, 0), (3, 0), (4, 0)]

    def test_no_match(self, matcher_class):
        matcher = matcher_class(b"needle")
        assert matcher.match(b"haystack without it") == []

    def test_match_at_start_and_end(self, matcher_class):
        matcher = matcher_class(b"ab")
        assert matcher.match(b"abxxab") == [(2, 0), (6, 0)]

    def test_pattern_equals_text(self, matcher_class):
        matcher = matcher_class(b"exact")
        assert matcher.match(b"exact") == [(5, 0)]

    def test_empty_pattern_rejected(self, matcher_class):
        with pytest.raises(ValueError):
            matcher_class(b"")

    def test_binary_patterns(self, matcher_class):
        matcher = matcher_class(b"\x00\xff\x00")
        assert matcher.match(b"\x00\xff\x00\xff\x00") == [(3, 0), (5, 0)]


@settings(max_examples=40, deadline=None)
@given(pattern=st.binary(min_size=1, max_size=6), data=st.binary(max_size=400))
def test_kmp_matches_find(pattern, data):
    assert KnuthMorrisPratt(pattern).match(data) == naive_find_all(pattern, data)


@settings(max_examples=40, deadline=None)
@given(pattern=st.binary(min_size=1, max_size=6), data=st.binary(max_size=400))
def test_boyer_moore_matches_find(pattern, data):
    assert BoyerMoore(pattern).match(data) == naive_find_all(pattern, data)


class TestNaiveMultiPattern:
    def test_reports_pattern_ids(self):
        matcher = NaiveMultiPattern([b"ab", b"bc"])
        assert matcher.match(b"abc") == [(2, 0), (3, 1)]

    def test_algorithm_selection(self):
        for algorithm in ("kmp", "boyer-moore"):
            matcher = NaiveMultiPattern([b"x"], algorithm=algorithm)
            assert matcher.match(b"xx") == [(1, 0), (2, 0)]

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError):
            NaiveMultiPattern([b"x"], algorithm="rabin-karp")

    def test_agrees_with_dfa(self, small_ruleset, rng):
        from repro.automata import AhoCorasickDFA
        from tests.conftest import text_with_patterns

        patterns = small_ruleset.patterns[:40]
        data = text_with_patterns(rng, patterns)
        dfa = AhoCorasickDFA.from_patterns(patterns)
        naive = NaiveMultiPattern(patterns)
        assert sorted(naive.match(data)) == sorted(dfa.match(data))
