"""Documentation is part of the contract: these tests keep it true.

* every ``python`` code block in README.md must actually run (top to bottom,
  in one shared namespace — the quickstart is written as a progression);
* the README's artefact table and docs/cli.md must cover every benchmark
  script and every CLI subcommand that exists (and name no phantom ones);
* PAPER.md must carry the real citation, not the seed stub.
"""

import pathlib
import re


from repro.cli import build_parser

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
README = REPO_ROOT / "README.md"
DOCS = REPO_ROOT / "docs"


def python_blocks(text: str):
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def subcommand_names():
    parser = build_parser()
    actions = [
        action for action in parser._actions
        if hasattr(action, "choices") and action.choices
    ]
    assert actions, "no subparsers found"
    return sorted(actions[0].choices)


class TestReadme:
    def test_exists_with_expected_sections(self):
        text = README.read_text(encoding="utf-8")
        for heading in ("## Install", "## Quickstart", "## Architecture", "## Tests"):
            assert heading in text

    def test_quickstart_code_blocks_run(self):
        """Execute every python block of the README in one namespace."""
        blocks = python_blocks(README.read_text(encoding="utf-8"))
        assert len(blocks) >= 2, "README should contain the two quickstart blocks"
        namespace: dict = {}
        for block in blocks:
            exec(compile(block, str(README), "exec"), namespace)
        # the streaming block must have proven the per-packet/streaming gap
        assert "flow" in namespace and "streamed" in namespace

    def test_architecture_table_lists_every_subpackage(self):
        text = README.read_text(encoding="utf-8")
        packages = sorted(
            path.parent.name
            for path in (REPO_ROOT / "src" / "repro").glob("*/__init__.py")
        )
        assert packages, "no subpackages found"
        for package in packages:
            assert f"`repro.{package}`" in text, f"README table misses repro.{package}"

    def test_artefact_table_names_real_benchmarks(self):
        text = README.read_text(encoding="utf-8")
        existing = {path.name for path in (REPO_ROOT / "benchmarks").glob("bench_*.py")}
        referenced = set(re.findall(r"bench_\w+\.py", text))
        assert referenced, "README references no benchmark scripts"
        assert referenced <= existing, f"phantom scripts: {referenced - existing}"
        assert existing <= referenced, f"undocumented scripts: {existing - referenced}"
        # the paper's artefacts each map to a script and (mostly) a subcommand
        for artefact in ("Table I ", "Table II ", "Table III ", "Figure 2 ",
                         "Figure 6 ", "Figure 7 ", "Figure 8 "):
            assert artefact in text, f"README artefact table misses {artefact.strip()}"


class TestCliDoc:
    def test_every_subcommand_documented(self):
        text = (DOCS / "cli.md").read_text(encoding="utf-8")
        for name in subcommand_names():
            assert f"## `{name}`" in text, f"docs/cli.md misses subcommand {name}"

    def test_no_phantom_subcommands_documented(self):
        text = (DOCS / "cli.md").read_text(encoding="utf-8")
        documented = set(re.findall(r"^## `([\w-]+)`", text, flags=re.MULTILINE))
        assert documented == set(subcommand_names())

    def test_examples_use_the_module_entry_point(self):
        text = (DOCS / "cli.md").read_text(encoding="utf-8")
        assert "python -m repro " in text


class TestApiDoc:
    def test_covers_the_whole_config_schema(self):
        """docs/api.md documents every mode, source kind and sink kind."""
        from repro.api import PIPELINE_MODES, sink_kinds, source_kinds

        text = (DOCS / "api.md").read_text(encoding="utf-8")
        for mode in PIPELINE_MODES:
            assert f'`"{mode}"`' in text, f"docs/api.md misses mode {mode}"
        for kind in source_kinds() + sink_kinds():
            assert f'`"{kind}"`' in text, f"docs/api.md misses kind {kind}"
        for needle in (
            "PipelineConfig", "SourceSpec", "RulesSpec", "EngineSpec",
            "SinkSpec", "Session", "to_dict", "from_dict", "load_config",
            "version",  # configs are version-stamped artifacts
            "register_source", "register_sink",
            "checkpoint", "restore",
            "byte-identical",
        ):
            assert needle in text, f"docs/api.md misses {needle!r}"

    def test_readme_and_cli_doc_cover_the_run_path(self):
        readme = README.read_text(encoding="utf-8")
        assert "repro.api" in readme and "Session" in readme
        cli = (DOCS / "cli.md").read_text(encoding="utf-8")
        assert "docs/api.md" in cli or "api.md" in cli


class TestArchitectureDoc:
    def test_covers_pruning_rule_and_compile_path(self):
        text = (DOCS / "architecture.md").read_text(encoding="utf-8")
        for needle in (
            "depth-1 defaults",
            "depth-2 defaults",
            "depth-3 defaults",
            "3 → 2 → 1",
            "longest suffix",
            "PackedStateMachine",
            "AcceleratorProgram",
            "ScanState",
            "FlowTable",
            # the capture/replay subsystem and its headline guarantee
            "repro.capture",
            "read_capture",
            "byte-identical",
            "bench_pcap_replay.py",
        ):
            assert needle in text, f"architecture.md misses {needle!r}"


class TestPaperStub:
    def test_paper_md_is_filled_in(self):
        text = (REPO_ROOT / "PAPER.md").read_text(encoding="utf-8")
        assert "Ultra-High Throughput String Matching" in text
        assert "DATE" in text and "2010" in text
        assert len(text.split()) > 100, "PAPER.md still looks like the stub"
