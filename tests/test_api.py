"""The declarative pipeline API: equivalence, round-trips, checkpoints.

The headline contract: for the same configuration, :class:`repro.api.Session`
produces **byte-identical** output — events, shard reports, alerts — to the
direct composition of :class:`ScanService` / :class:`ParallelScanService` /
the replay adapters, across {dtp, dense} × {serial, workers=2} ×
{in-memory, pcap}.  The facade adds configuration, never behaviour.
"""

import json

import pytest

from repro.api import (
    ConfigError,
    ContentRule,
    EmptyRulesetError,
    EngineSpec,
    PipelineConfig,
    RulesSpec,
    Session,
    SinkSpec,
    SourceSpec,
    load_config,
    repro_version,
    sink_kinds,
    source_kinds,
)
from repro.backend import get_backend
from repro.capture import load_packets
from repro.core import compile_ruleset
from repro.fpga import STRATIX_III
from repro.ids import IntrusionDetectionSystem
from repro.rulesets import generate_snort_like_ruleset
from repro.streaming import ParallelScanService, ScanService
from repro.traffic import TrafficGenerator

SIZE, SEED = 40, 5
SHARDS = 2
FLOW_CAPACITY = 4096

BACKENDS = ("dtp", "dense")
WORKER_COUNTS = (None, 2)


def build_ruleset():
    return generate_snort_like_ruleset(SIZE, seed=SEED)


def build_program(ruleset, backend):
    if backend == "dtp":
        return compile_ruleset(ruleset, STRATIX_III)
    return get_backend(backend).compile(ruleset.patterns)


def build_packets(ruleset):
    generator = TrafficGenerator(ruleset, seed=SEED + 1)
    flows = generator.flows(6, num_packets=3, split_patterns=1)
    return TrafficGenerator.interleave(flows)


def make_service(program, workers):
    if workers is None:
        return ScanService(
            program, num_shards=SHARDS, flow_capacity_per_shard=FLOW_CAPACITY
        )
    return ParallelScanService(
        program,
        num_shards=SHARDS,
        flow_capacity_per_shard=FLOW_CAPACITY,
        workers=workers,
    )


def generator_source():
    return SourceSpec(
        kind="generator", flows=6, packets_per_flow=3, split_patterns=1, seed=SEED + 1
    )


def stream_config(source, backend, workers, sinks=()):
    return PipelineConfig(
        mode="stream",
        source=source,
        rules=RulesSpec(kind="synthetic", size=SIZE, seed=SEED),
        engine=EngineSpec(
            backend=backend, shards=SHARDS, workers=workers,
            flow_capacity=FLOW_CAPACITY,
        ),
        sinks=sinks,
    )


@pytest.fixture(scope="module")
def workload_pcap(tmp_path_factory):
    """The generator workload exported as a classic pcap capture."""
    path = tmp_path_factory.mktemp("api") / "workload.pcap"
    TrafficGenerator.export_pcap(str(path), build_packets(build_ruleset()))
    return path


# ----------------------------------------------------------------------
# equivalence: Session output == direct composition
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_stream_session_matches_direct_composition(backend, workers):
    """The facade must add configuration, never behaviour: its stream result
    equals the reference the differential harness proves every direct
    composition produces."""
    from tests.conftest import assert_equivalent_events

    ruleset = build_ruleset()
    packets = build_packets(ruleset)
    direct = assert_equivalent_events(
        ruleset,
        packets,
        backends=(backend,),
        worker_counts=(workers,),
        sources=("memory",),
        num_shards=SHARDS,
        flow_capacity=FLOW_CAPACITY,
    ).result

    with Session.from_config(stream_config(generator_source(), backend, workers)) as s:
        via_session = s.run().scan_result

    assert via_session.events == direct.events
    assert via_session.shards == direct.shards
    assert via_session.packets == direct.packets
    assert via_session.bytes_scanned == direct.bytes_scanned


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_pcap_session_matches_direct_replay(backend, workers, workload_pcap):
    """Replay through a pcap-source Session equals the harness reference for
    the same capture (which itself equals the in-memory scan)."""
    from tests.conftest import assert_equivalent_events

    ruleset = build_ruleset()
    direct = assert_equivalent_events(
        ruleset,
        build_packets(ruleset),
        backends=(backend,),
        worker_counts=(workers,),
        sources=("memory", "pcap"),
        num_shards=SHARDS,
        flow_capacity=FLOW_CAPACITY,
    ).result

    config = stream_config(
        SourceSpec(kind="pcap", path=str(workload_pcap)), backend, workers
    )
    with Session.from_config(config) as s:
        via_session = s.scan()

    assert via_session.events == direct.events
    assert via_session.shards == direct.shards


@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_ids_session_matches_direct_pipeline(backend, workers):
    ruleset = build_ruleset()
    packets = build_packets(ruleset)
    with IntrusionDetectionSystem.from_ruleset(
        ruleset, backend=backend, workers=workers
    ) as ids:
        direct = ids.scan_flow(packets)
        direct_stats = ids.stats

    config = PipelineConfig(
        mode="ids",
        source=generator_source(),
        rules=RulesSpec(kind="synthetic", size=SIZE, seed=SEED),
        engine=EngineSpec(backend=backend, workers=workers),
    )
    with Session.from_config(config) as s:
        run = s.run()
        assert run.alerts == direct
        assert s.ids.stats == direct_stats


def test_packets_mode_matches_stateless_scan():
    ruleset = build_ruleset()
    program = build_program(ruleset, "dense")
    generator = TrafficGenerator(ruleset, seed=SEED + 1)
    packets = generator.packets(12)
    direct = program.scan_packets([p.payload for p in packets])

    config = PipelineConfig(
        mode="packets",
        source=SourceSpec(kind="packets", packets=tuple(packets)),
        rules=RulesSpec(kind="synthetic", size=SIZE, seed=SEED),
        engine=EngineSpec(backend="dense"),
    )
    with Session.from_config(config) as s:
        run = s.run()
    assert run.per_packet == direct
    assert [(e.packet_id, e.end_offset, e.string_number) for e in run.events] == [
        (packet.packet_id, offset, number)
        for packet, matches in zip(packets, direct)
        for offset, number in matches
    ]


# ----------------------------------------------------------------------
# checkpoint/restore through the facade
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_session_checkpoints_interchange_with_raw_service(backend, workers):
    """Session checkpoints are the raw service envelope, both directions."""
    ruleset = build_ruleset()
    program = build_program(ruleset, backend)
    packets = build_packets(ruleset)
    half = len(packets) // 2
    first, second = packets[:half], packets[half:]

    config = stream_config(
        SourceSpec(kind="packets", packets=tuple(packets)), backend, workers
    )
    with Session.from_config(config) as session:
        session.scan(first)
        session_checkpoint = session.checkpoint()

        with make_service(program, workers) as raw:
            raw.scan(first)
            raw_checkpoint = raw.checkpoint()
            assert session_checkpoint == raw_checkpoint

        # a JSON round-tripped session checkpoint restores into a raw service
        revived = json.loads(json.dumps(session_checkpoint))
        serial_events = session.scan(second).events
        with ScanService(
            program, num_shards=SHARDS, flow_capacity_per_shard=FLOW_CAPACITY
        ) as raw2:
            raw2.restore(revived)
            assert raw2.scan(second).events == serial_events

    # ...and a raw checkpoint restores into a fresh session
    with Session.from_config(config) as fresh:
        fresh.restore(raw_checkpoint)
        assert fresh.scan(second).events == serial_events


def test_checkpoint_requires_stream_mode():
    config = PipelineConfig(
        mode="ids",
        source=generator_source(),
        rules=RulesSpec(kind="synthetic", size=SIZE, seed=SEED),
        engine=EngineSpec(backend="dense"),
    )
    with Session.from_config(config) as session:
        with pytest.raises(ValueError, match="stream-mode"):
            session.checkpoint()
        with pytest.raises(ValueError, match="stream-mode"):
            session.restore({})


# ----------------------------------------------------------------------
# config round-trips and file loading
# ----------------------------------------------------------------------
def test_config_round_trips_through_dict():
    config = stream_config(
        generator_source(), "dense", 2,
        sinks=(SinkSpec(kind="events"), SinkSpec(kind="ndjson", path="out.ndjson")),
    )
    data = config.to_dict()
    assert data["version"] == repro_version()
    revived = PipelineConfig.from_dict(json.loads(json.dumps(data)))
    assert revived == config
    assert revived.to_dict() == data


def test_in_memory_packets_survive_serialisation():
    ruleset = build_ruleset()
    packets = build_packets(ruleset)
    config = stream_config(
        SourceSpec(kind="packets", packets=tuple(packets)), "dense", None
    )
    revived = PipelineConfig.from_dict(json.loads(json.dumps(config.to_dict())))
    with Session.from_config(config) as a, Session.from_config(revived) as b:
        assert a.run().events == b.run().events


def test_run_cli_executes_json_and_toml_configs(tmp_path, capsys):
    from repro.cli import main

    body = {
        "mode": "stream",
        "source": {"kind": "generator", "flows": 4, "packets_per_flow": 3,
                   "split_patterns": 1, "seed": 7},
        "rules": {"kind": "synthetic", "size": SIZE, "seed": SEED},
        "engine": {"backend": "dense", "shards": 2},
        "sinks": [{"kind": "ndjson", "path": "events.ndjson"}],
    }
    json_path = tmp_path / "pipe.json"
    json_path.write_text(json.dumps(body), encoding="utf-8")
    assert main(["run", str(json_path)]) == 0
    out = capsys.readouterr().out
    assert "mode                  : stream" in out
    assert (tmp_path / "events.ndjson").exists()

    toml_path = tmp_path / "pipe.toml"
    toml_path.write_text(
        "\n".join(
            [
                'mode = "stream"',
                "[source]",
                'kind = "generator"',
                "flows = 4",
                "packets_per_flow = 3",
                "split_patterns = 1",
                "seed = 7",
                "[rules]",
                'kind = "synthetic"',
                f"size = {SIZE}",
                f"seed = {SEED}",
                "[engine]",
                'backend = "dense"',
                "shards = 2",
                "[[sinks]]",
                'kind = "ndjson"',
                'path = "events_toml.ndjson"',
            ]
        ),
        encoding="utf-8",
    )
    assert main(["run", str(toml_path)]) == 0
    capsys.readouterr()
    json_lines = (tmp_path / "events.ndjson").read_text(encoding="utf-8")
    toml_lines = (tmp_path / "events_toml.ndjson").read_text(encoding="utf-8")
    assert json_lines == toml_lines  # same config, same artifact
    assert json_lines.count("\n") > 0


def test_relative_paths_resolve_against_config_dir(tmp_path):
    rules = tmp_path / "local.rules"
    rules.write_text(
        'alert tcp any any -> any any (msg:"m"; content:"GET /index.html"; sid:10;)\n'
    )
    config_path = tmp_path / "pipe.json"
    config_path.write_text(
        json.dumps(
            {
                "mode": "stream",
                "source": {"kind": "generator", "flows": 4, "packets_per_flow": 3,
                           "split_patterns": 1, "seed": 7},
                "rules": {"kind": "file", "path": "local.rules"},
                "engine": {"backend": "dense", "shards": 2},
            }
        ),
        encoding="utf-8",
    )
    config = load_config(config_path)
    assert config.base_dir == str(tmp_path)
    with Session.from_config(config) as session:
        assert len(session.ruleset) == 1
        session.run()


# ----------------------------------------------------------------------
# sinks
# ----------------------------------------------------------------------
def test_ndjson_sink_records_events(tmp_path):
    out = tmp_path / "events.ndjson"
    config = stream_config(
        generator_source(), "dense", None,
        sinks=(SinkSpec(kind="ndjson", path=str(out)), SinkSpec(kind="events")),
    )
    with Session.from_config(config) as session:
        run = session.run()
        records = [json.loads(line) for line in out.read_text().splitlines()]
        assert len(records) == len(run.events)
        assert run.sinks[1] == run.events
        for record, event in zip(records, run.events):
            assert record["packet"] == event.packet_id
            assert record["offset"] == event.end_offset
            assert record["sid"] == session.sid_of[event.string_number]
            assert record["flow"] == list(event.flow.as_tuple())


def test_pcap_sink_round_trips_the_workload(tmp_path):
    out = tmp_path / "export.pcapng"
    config = stream_config(
        generator_source(), "dense", None,
        sinks=(SinkSpec(kind="pcap", path=str(out)),),
    )
    with Session.from_config(config) as session:
        run = session.run()
        assert run.sinks[0]["fmt"] == "pcapng"
        assert run.sinks[0]["frames"] == len(session.packets)
        replayed, stats = load_packets(str(out))
        assert stats.skipped_total == 0
        assert [p.payload for p in replayed] == [p.payload for p in session.packets]


# ----------------------------------------------------------------------
# validation and registries
# ----------------------------------------------------------------------
def test_registries_list_builtin_kinds():
    assert source_kinds() == ["generator", "packets", "pcap", "pcap-tail", "tcp", "udp"]
    assert sink_kinds() == ["alerts", "events", "ndjson", "pcap"]


@pytest.mark.parametrize(
    "factory",
    [
        lambda: SourceSpec(kind="nope", count=1),
        lambda: SourceSpec(kind="generator"),  # neither flows nor count
        lambda: SourceSpec(kind="generator", flows=2, count=2),  # both
        lambda: SourceSpec(kind="pcap"),  # no path
        lambda: RulesSpec(kind="nope"),
        lambda: RulesSpec(kind="file"),  # no path
        lambda: RulesSpec(kind="specs"),  # no rules
        lambda: SourceSpec(kind="tcp"),  # live listener without a port
        lambda: SourceSpec(kind="udp", port=70000),  # port out of range
        lambda: SourceSpec(kind="pcap-tail"),  # no path
        lambda: SourceSpec(kind="tcp", port=9, batch_packets=0),
        lambda: SourceSpec(kind="tcp", port=9, max_packets=0),
        lambda: EngineSpec(backend="nope"),
        lambda: EngineSpec(device="nope"),
        lambda: EngineSpec(shards=0),
        lambda: EngineSpec(workers=0),
        lambda: EngineSpec(flow_capacity=0),
        lambda: EngineSpec(ring_slots=0),
        lambda: EngineSpec(ring_slot_bytes=-1),
        lambda: SinkSpec(kind="nope"),
        lambda: SinkSpec(kind="ndjson"),  # no path
        lambda: SinkSpec(kind="events", what="bogus"),
        lambda: PipelineConfig(mode="nope", source=SourceSpec(kind="generator", count=1)),
        lambda: PipelineConfig.from_dict({"source": {"kind": "generator", "count": 1},
                                          "bogus": 1}),
        lambda: PipelineConfig.from_dict({}),
    ],
)
def test_malformed_configs_raise_config_error(factory):
    with pytest.raises(ConfigError):
        factory()


def test_contentless_rules_file_raises_empty_ruleset(tmp_path):
    rules = tmp_path / "empty.rules"
    rules.write_text('alert tcp any any -> any any (msg:"no content"; sid:9;)\n')
    config = PipelineConfig(
        source=SourceSpec(kind="generator", flows=2, packets_per_flow=2, seed=1),
        rules=RulesSpec(kind="file", path=str(rules)),
        engine=EngineSpec(backend="dense"),
    )
    with Session.from_config(config) as session:
        with pytest.raises(EmptyRulesetError, match="no content patterns"):
            session.ruleset


def test_explicit_specs_share_the_sid_allocator_policy():
    config = PipelineConfig(
        mode="stream",
        source=SourceSpec(kind="packets", packets=()),
        rules=RulesSpec(
            kind="specs",
            rules=(
                ContentRule(content="first", sid=7),
                ContentRule(content="second", sid=7),  # collision: first wins
                ContentRule(content="third"),
            ),
        ),
        engine=EngineSpec(backend="dense"),
    )
    with Session.from_config(config) as session:
        assert session.ruleset.sids == [7, 1, 2]
        assert session.sid_remap == {1: 7}
