"""Tests for default transition pointer selection (Section III.B)."""

import numpy as np
import pytest

from repro.automata import AhoCorasickDFA
from repro.automata.trie import ROOT
from repro.core import DTPAutomaton, build_default_transition_table
from repro.core.default_transitions import enforce_pointer_limit
from repro.core.dtp_automaton import staged_pointer_counts


class TestSelection:
    def test_d1_covers_every_depth1_state(self, example_dfa):
        table = build_default_transition_table(example_dfa)
        assert int(table.d1[ord("h")]) == example_dfa.trie.find_node(b"h")
        assert int(table.d1[ord("s")]) == example_dfa.trie.find_node(b"s")
        assert int(table.d1[ord("x")]) == ROOT
        assert table.num_d1 == 2

    def test_d2_limited_per_character(self, example_dfa):
        table = build_default_transition_table(example_dfa, d2_slots=4)
        for entries in table.d2.values():
            assert len(entries) <= 4
            for entry in entries:
                assert example_dfa.depth[entry.state] == 2
                assert example_dfa.label[entry.state] == entry.byte

    def test_d3_single_per_character(self, example_dfa):
        table = build_default_transition_table(example_dfa)
        for byte, entry in table.d3.items():
            assert example_dfa.depth[entry.state] == 3
            assert example_dfa.label[entry.state] == byte
            parent = int(example_dfa.parent[entry.state])
            grandparent = int(example_dfa.parent[parent])
            assert entry.preceding_bytes == (
                int(example_dfa.label[grandparent]),
                int(example_dfa.label[parent]),
            )

    def test_example_counts_match_trie_structure(self, example_dfa):
        table = build_default_transition_table(example_dfa)
        # he, hi, sh exist at depth 2; her, his, she at depth 3
        assert table.num_d2 == 3
        assert table.num_d3 == 3
        assert table.total_defaults == 8

    def test_most_popular_depth2_state_wins(self):
        # "Xa" targeted from many states vs "Ya" targeted only via its parent.
        patterns = [b"Xa", b"Ya"] + [bytes([c]) + b"X" for c in range(65, 75)]
        dfa = AhoCorasickDFA.from_patterns(patterns)
        table = build_default_transition_table(dfa, d2_slots=1)
        entries = table.d2[ord("a")]
        assert len(entries) == 1
        assert dfa.trie.string_of(entries[0].state) == b"Xa"

    def test_disable_deeper_defaults(self, example_dfa):
        table = build_default_transition_table(example_dfa, include_d2=False, include_d3=False)
        assert table.num_d2 == 0
        assert table.num_d3 == 0

    def test_d2_slot_count_respected(self, small_ruleset):
        dfa = AhoCorasickDFA.from_patterns(small_ruleset.patterns)
        for slots in (1, 2, 4, 8):
            table = build_default_transition_table(dfa, d2_slots=slots)
            assert all(len(entries) <= slots for entries in table.d2.values())

    def test_invalid_d2_slots(self, example_dfa):
        with pytest.raises(ValueError):
            build_default_transition_table(example_dfa, d2_slots=-1)


class TestResolution:
    def test_resolve_prefers_deepest_default(self, example_dfa):
        table = build_default_transition_table(example_dfa)
        trie = example_dfa.trie
        # history "h","e" then byte 'r' -> depth-3 state "her"
        assert table.resolve(ord("r"), prev1=ord("e"), prev2=ord("h")) == trie.find_node(b"her")
        # history only "e" (prev2 mismatch) -> no d3, no d2 for 'r' -> root
        assert table.resolve(ord("r"), prev1=ord("e"), prev2=ord("x")) == ROOT
        # depth-2 default: prev1 'h', byte 'e' -> "he"
        assert table.resolve(ord("e"), prev1=ord("h"), prev2=None) == trie.find_node(b"he")
        # depth-1 default
        assert table.resolve(ord("h"), prev1=None, prev2=None) == trie.find_node(b"h")
        assert table.resolve(ord("z"), prev1=None, prev2=None) == ROOT

    def test_resolution_never_deeper_than_true_target(self, small_ruleset, rng):
        dfa = AhoCorasickDFA.from_patterns(small_ruleset.patterns[:60])
        table = build_default_transition_table(dfa)
        data = bytes(rng.randrange(0, 256) for _ in range(400))
        state = ROOT
        prev1 = prev2 = None
        for byte in data:
            resolved = table.resolve(byte, prev1, prev2)
            true_target = dfa.step(state, byte)
            assert dfa.depth[resolved] <= dfa.depth[true_target]
            state = true_target
            prev2, prev1 = prev1, byte


class TestCountsAndMasks:
    def test_covered_state_mask(self, example_dfa):
        table = build_default_transition_table(example_dfa)
        mask = table.covered_state_mask(example_dfa.num_states)
        covered = set(np.flatnonzero(mask).tolist())
        expected = set(table.depth1_states()) | set(table.depth2_states()) | set(
            table.depth3_states()
        )
        assert covered == expected

    def test_staged_counts_monotonic(self, small_ruleset):
        dfa = AhoCorasickDFA.from_patterns(small_ruleset.patterns)
        table = build_default_transition_table(dfa)
        staged = staged_pointer_counts(dfa, table)
        assert staged.original >= staged.after_d1 >= staged.after_d1_d2 >= staged.after_d1_d2_d3
        assert staged.reduction_percent > 80.0


class TestPointerLimitRepair:
    def test_limit_enforced_or_reported(self, medium_ruleset):
        dfa = AhoCorasickDFA.from_patterns(medium_ruleset.patterns)
        table = build_default_transition_table(dfa, max_stored_pointers=13)
        dtp = DTPAutomaton(dfa, defaults=table)
        assert dtp.max_pointers_per_state() <= 13

    def test_repair_preserves_matching(self, small_ruleset, rng):
        from tests.conftest import text_with_patterns

        patterns = small_ruleset.patterns
        dfa = AhoCorasickDFA.from_patterns(patterns)
        limited = DTPAutomaton(dfa, defaults=build_default_transition_table(dfa, max_stored_pointers=6))
        data = text_with_patterns(rng, patterns)
        assert sorted(limited.match(data)) == sorted(dfa.match(data))

    def test_repair_reduces_maximum(self, medium_ruleset):
        dfa = AhoCorasickDFA.from_patterns(medium_ruleset.patterns)
        plain = build_default_transition_table(dfa)
        plain_max = DTPAutomaton(dfa, defaults=plain).max_pointers_per_state()
        repaired = build_default_transition_table(dfa, max_stored_pointers=max(4, plain_max - 2))
        repaired_max = DTPAutomaton(dfa, defaults=repaired).max_pointers_per_state()
        assert repaired_max <= plain_max

    def test_enforce_rejects_bad_limit(self, example_dfa):
        table = build_default_transition_table(example_dfa)
        with pytest.raises(ValueError):
            enforce_pointer_limit(example_dfa, table, 0)
