"""Tests for the 15 state types of Figure 3."""

import pytest

from repro.core.state_types import (
    MATCH_INFO_BITS,
    MAX_POINTERS_PER_STATE,
    POINTER_BITS,
    SIZE_CLASSES,
    SLOT_BITS,
    SLOTS_PER_WORD,
    STATE_TYPES,
    WORD_BITS,
    allowed_start_slots,
    pointer_capacity,
    slots_for_pointer_count,
    state_type,
    type_for_placement,
)


def test_exactly_fifteen_types():
    assert len(STATE_TYPES) == 15
    assert [t.type_id for t in STATE_TYPES] == list(range(1, 16))


def test_word_geometry():
    assert WORD_BITS == 324
    assert SLOT_BITS == 36
    assert SLOTS_PER_WORD == 9
    assert MATCH_INFO_BITS == 12
    assert POINTER_BITS == 24


def test_size_classes_match_paper():
    """Types 1-9: 0-1 ptrs; 10-12: 2-4; 13: 5-7; 14: 8-10; 15: 11-13."""
    assert SIZE_CLASSES == {1: (0, 1), 3: (2, 4), 5: (5, 7), 7: (8, 10), 9: (11, 13)}
    assert MAX_POINTERS_PER_STATE == 13


def test_width_fits_match_info_and_pointers():
    for slots, (_low, high) in SIZE_CLASSES.items():
        assert slots * SLOT_BITS == MATCH_INFO_BITS + high * POINTER_BITS


def test_type_positions():
    assert allowed_start_slots(1) == list(range(9))
    assert allowed_start_slots(3) == [0, 3, 6]
    assert allowed_start_slots(5) == [0]
    assert allowed_start_slots(7) == [0]
    assert allowed_start_slots(9) == [0]


def test_types_fit_within_word():
    for t in STATE_TYPES:
        assert t.bit_offset + t.width_bits <= WORD_BITS
        assert t.max_pointers == SIZE_CLASSES[t.slots][1]
        assert t.min_pointers == SIZE_CLASSES[t.slots][0]
        assert list(t.slot_range()) == list(range(t.start_slot, t.start_slot + t.slots))


def test_state_type_lookup_roundtrip():
    for t in STATE_TYPES:
        assert state_type(t.type_id) is t
        assert type_for_placement(t.slots, t.start_slot) is t


def test_state_type_invalid_ids():
    with pytest.raises(ValueError):
        state_type(0)
    with pytest.raises(ValueError):
        state_type(16)
    with pytest.raises(ValueError):
        type_for_placement(3, 1)
    with pytest.raises(ValueError):
        type_for_placement(2, 0)


@pytest.mark.parametrize(
    "pointers,slots",
    [(0, 1), (1, 1), (2, 3), (4, 3), (5, 5), (7, 5), (8, 7), (10, 7), (11, 9), (13, 9)],
)
def test_slots_for_pointer_count(pointers, slots):
    assert slots_for_pointer_count(pointers) == slots
    assert pointer_capacity(slots) >= pointers


def test_slots_for_pointer_count_rejects_overflow():
    with pytest.raises(ValueError):
        slots_for_pointer_count(14)
    with pytest.raises(ValueError):
        slots_for_pointer_count(-1)
    with pytest.raises(ValueError):
        pointer_capacity(2)
