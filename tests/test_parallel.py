"""Tests for the process-parallel shard executor and the checkpoint fixes.

Two families of guarantees are pinned down here:

* **equivalence** — :class:`repro.streaming.ParallelScanService` must report
  the byte-identical event stream, shard reports and checkpoint envelope as
  the serial :class:`ScanService` in every worker configuration, and a
  checkpoint taken from either front-end must restore into the other with
  cross-segment matches intact;
* **checkpoint correctness** — flow keys survive a JSON round trip with
  float-typed ports (the sharding/identity bug), and the flow table's
  created/evicted/restore accounting tells the truth.
"""

import json

import pytest

from repro.backend import ScanState
from repro.core import compile_ruleset
from repro.fpga import STRATIX_III
from repro.ids import HeaderPattern, IDSRule, IntrusionDetectionSystem
from repro.rulesets import RuleSet
from repro.streaming import FlowEntry, FlowKey, FlowTable, ParallelScanService, ScanService
from repro.traffic import FiveTuple, Packet, TrafficGenerator

WORKER_COUNTS = (1, 2, 4)


def make_key(n: int = 0) -> FlowKey:
    return FlowKey(f"10.0.0.{n}", "192.168.0.1", 40000 + n, 80, "tcp")


def make_header(n: int = 0) -> FiveTuple:
    return FiveTuple(f"10.0.0.{n}", "192.168.0.1", 40000 + n, 80, "tcp")


@pytest.fixture(scope="module")
def crafted_ruleset() -> RuleSet:
    ruleset = RuleSet(name="crafted-parallel")
    ruleset.add_pattern(b"EVILPAYLOADSIGNATURE")
    ruleset.add_pattern(b"lowercasesignature")
    return ruleset


@pytest.fixture(scope="module")
def crafted_program(crafted_ruleset):
    return compile_ruleset(crafted_ruleset, STRATIX_III)


# ----------------------------------------------------------------------
# satellite bugfix: FlowKey type coercion on restore
# ----------------------------------------------------------------------
class TestFlowKeyCoercion:
    def test_coerced_constructor_canonicalises_types(self):
        key = FlowKey.coerced("10.0.0.1", "192.168.0.1", 40001.0, 80.0, "tcp")
        assert key == make_key(1)
        assert isinstance(key.src_port, int) and isinstance(key.dst_port, int)
        assert key.encode() == make_key(1).encode()

    def test_from_header_coerces_port_types(self):
        header = FiveTuple("10.0.0.1", "192.168.0.1", 40001.0, 80.0, "tcp")
        assert FlowKey.from_header(header) == make_key(1)

    def test_from_dict_coerces_float_ports(self):
        entry = FlowEntry(key=make_key(2), states=(ScanState(),))
        data = entry.as_dict()
        data["key"][2] = float(data["key"][2])  # what a JSON writer may emit
        data["key"][3] = float(data["key"][3])
        restored = FlowEntry.from_dict(data)
        assert restored.key == make_key(2)
        assert restored.key.encode() == make_key(2).encode()

    def test_float_port_checkpoint_resumes_flow_and_sharding(
        self, crafted_program, crafted_ruleset
    ):
        """The regression proper: a float-port checkpoint used to produce a
        key encoding ``"80.0"``, so the restored flow neither resumed nor
        landed on the live traffic's shard."""
        pattern = crafted_ruleset[0].pattern
        header = make_header(3)
        service = ScanService(crafted_program, num_shards=4)
        assert service.submit(Packet(payload=pattern[:9], header=header, packet_id=0)) == []

        snapshot = json.loads(json.dumps(service.checkpoint()))
        for shard_data in snapshot["shards"]:
            for flow in shard_data["flows"]:
                flow["key"][2] = float(flow["key"][2])
                flow["key"][3] = float(flow["key"][3])

        resumed = ScanService(crafted_program, num_shards=4)
        resumed.restore(snapshot)
        live_key = FlowKey.from_header(header)
        restored_key = resumed.engines[resumed.shard_for(live_key)].flows.keys()[0]
        assert restored_key == live_key
        assert resumed.shard_for(restored_key) == service.shard_for(live_key)
        matches = resumed.submit(Packet(payload=pattern[9:], header=header, packet_id=1))
        assert [m.string_number for m in matches] == [0]


# ----------------------------------------------------------------------
# satellite bugfix: flow-table statistics accounting
# ----------------------------------------------------------------------
class TestFlowTableAccounting:
    @staticmethod
    def entry(n: int) -> FlowEntry:
        return FlowEntry(key=make_key(n), states=(ScanState(),))

    def test_insert_overwrite_does_not_count_as_created(self):
        table = FlowTable(capacity=4)
        table.insert(self.entry(1))
        table.insert(self.entry(1))  # overwrite, not a new flow
        assert len(table) == 1
        assert table.stats.created == 1
        table.insert(self.entry(2))
        assert table.stats.created == 2

    def test_restore_counts_created(self):
        table = FlowTable(capacity=8)
        for n in range(3):
            table.insert(self.entry(n))
        restored = FlowTable.restore(table.checkpoint())
        assert restored.stats.created == 3
        assert restored.stats.evicted == 0
        assert restored.stats.restore_dropped == 0

    def test_restore_overflow_counts_drops_and_invokes_on_evict(self):
        table = FlowTable(capacity=8)
        for n in range(5):
            table.insert(self.entry(n))
        dropped = []
        restored = FlowTable.restore(
            table.checkpoint(), capacity=2, on_evict=dropped.append
        )
        assert len(restored) == 2
        assert restored.stats.restore_dropped == 3
        assert restored.stats.created == 2
        assert restored.stats.evicted == 0  # drops are not LRU evictions
        # the LRU head was dropped, oldest first, and handed to on_evict
        assert [e.key for e in dropped] == [make_key(0), make_key(1), make_key(2)]
        assert make_key(3) in restored and make_key(4) in restored


# ----------------------------------------------------------------------
# tentpole: parallel/serial equivalence
# ----------------------------------------------------------------------
class TestParallelEquivalence:
    def test_randomized_traffic_identical_events_and_reports(self, small_ruleset):
        """Serial vs every worker count, over two consecutive batches (state
        must carry across scan() calls) — all through the shared harness."""
        from tests.conftest import assert_equivalent_events

        generator = TrafficGenerator(small_ruleset, seed=47)
        flows = generator.flows(14, num_packets=4, split_patterns=1, segment_bytes=90)
        packets = TrafficGenerator.interleave(flows)
        reference = assert_equivalent_events(
            small_ruleset,
            packets,
            backends=("dtp",),
            worker_counts=(None,) + WORKER_COUNTS,
            sources=("memory",),
            num_shards=4,
            batches=2,
        )
        assert reference.events, "boundary-split flows should produce events"
        assert reference.stats["cross_segment_matches"] > 0

    def test_submit_matches_serial_submit(self, crafted_program, crafted_ruleset):
        pattern = crafted_ruleset[0].pattern
        header = make_header(4)
        serial = ScanService(crafted_program, num_shards=2)
        with ParallelScanService(crafted_program, num_shards=2, workers=2) as parallel:
            for packet_id, payload in enumerate((pattern[:6], pattern[6:])):
                packet = Packet(payload=payload, header=header, packet_id=packet_id)
                assert parallel.submit(packet) == serial.submit(packet)

    def test_nocase_events_identical(self, crafted_ruleset):
        from tests.conftest import assert_equivalent_events

        header = make_header(5)
        packets = [
            Packet(payload=b"xx LowerCase", header=header, packet_id=0),
            Packet(payload=b"Signature yy", header=header, packet_id=1),
        ]
        reference = assert_equivalent_events(
            crafted_ruleset,
            packets,
            backends=("dtp", "dense"),
            worker_counts=(None, 2),
            sources=("memory",),
            num_shards=2,
            track_nocase=True,
        )
        assert any(event.lowered for event in reference.events)

    @pytest.mark.parametrize("workers", (1, 2))
    def test_serial_checkpoint_restores_into_parallel(
        self, crafted_program, crafted_ruleset, workers
    ):
        pattern = crafted_ruleset[0].pattern
        header = make_header(6)
        serial = ScanService(crafted_program, num_shards=2)
        assert serial.submit(Packet(payload=pattern[:9], header=header, packet_id=0)) == []
        snapshot = serial.checkpoint()

        with ParallelScanService(crafted_program, num_shards=2, workers=workers) as parallel:
            parallel.restore(snapshot)
            matches = parallel.submit(
                Packet(payload=pattern[9:], header=header, packet_id=1)
            )
            assert [m.string_number for m in matches] == [0]
            # the match straddles the checkpoint boundary
            assert matches[0].end_offset == len(pattern)
            assert parallel.cross_segment_matches == 1

    def test_parallel_checkpoint_restores_into_serial(
        self, crafted_program, crafted_ruleset
    ):
        pattern = crafted_ruleset[0].pattern
        header = make_header(7)
        with ParallelScanService(crafted_program, num_shards=2, workers=2) as parallel:
            assert parallel.submit(
                Packet(payload=pattern[:9], header=header, packet_id=0)
            ) == []
            snapshot = parallel.checkpoint()

        serial = ScanService(crafted_program, num_shards=2)
        serial.restore(snapshot)
        matches = serial.submit(Packet(payload=pattern[9:], header=header, packet_id=1))
        assert [m.string_number for m in matches] == [0]
        assert serial.cross_segment_matches == 1

    def test_parallel_checkpoint_across_worker_counts(
        self, crafted_program, crafted_ruleset
    ):
        """num_shards is the checkpoint contract; the worker count is not."""
        pattern = crafted_ruleset[0].pattern
        header = make_header(8)
        with ParallelScanService(crafted_program, num_shards=4, workers=2) as first:
            first.submit(Packet(payload=pattern[:7], header=header, packet_id=0))
            snapshot = first.checkpoint()
        with ParallelScanService(crafted_program, num_shards=4, workers=4) as second:
            second.restore(snapshot)
            matches = second.submit(
                Packet(payload=pattern[7:], header=header, packet_id=1)
            )
        assert [m.string_number for m in matches] == [0]

    def test_restore_rejects_shard_mismatch(self, crafted_program):
        snapshot = ScanService(crafted_program, num_shards=2).checkpoint()
        with ParallelScanService(crafted_program, num_shards=3, workers=1) as parallel:
            with pytest.raises(ValueError):
                parallel.restore(snapshot)

    def test_worker_count_validation(self, crafted_program):
        with pytest.raises(ValueError):
            ParallelScanService(crafted_program, num_shards=2, workers=0)
        with pytest.raises(ValueError):
            ParallelScanService(crafted_program, num_shards=2, workers=3)
        with pytest.raises(ValueError):
            ParallelScanService(crafted_program, num_shards=0)

    def test_closed_service_rejects_scans(self, crafted_program):
        service = ParallelScanService(crafted_program, num_shards=2, workers=1)
        service.close()
        service.close()  # idempotent
        with pytest.raises(RuntimeError):
            service.scan([])


# ----------------------------------------------------------------------
# IDS over the parallel executor
# ----------------------------------------------------------------------
class TestParallelIDS:
    @staticmethod
    def build_ids(workers=None) -> IntrusionDetectionSystem:
        rules = [
            IDSRule(
                sid=1001,
                header=HeaderPattern(protocol="tcp", dst_port="80"),
                contents=(b"EVILPAYLOADSIGNATURE",),
                msg="split signature",
            ),
            IDSRule(
                sid=1002,
                header=HeaderPattern(protocol="tcp"),
                contents=(b"XMALICIOUSSHELLCODEX", b"QQBACKDOORBEACONQQ"),
                msg="two contents",
            ),
            IDSRule(
                sid=2001,
                header=HeaderPattern(),
                contents=(b"evilpayloadsignature",),
                nocase=(True,),
            ),
        ]
        return IntrusionDetectionSystem(rules, workers=workers)

    @staticmethod
    def traffic():
        one, two, three = make_header(1), make_header(2), make_header(3)
        return [
            Packet(payload=b"GET EVILPAY", header=one, packet_id=0),
            Packet(payload=b"XMALICIOUSSHELLCODEX", header=two, packet_id=0),
            Packet(payload=b"LOADSIGNATURE\r\n", header=one, packet_id=1),
            Packet(payload=b"QQBACKDOOR", header=two, packet_id=1),
            Packet(payload=b"EvIlPaYlOaDsIgNaTuRe", header=three, packet_id=0),
            Packet(payload=b"BEACONQQ", header=two, packet_id=2),
            Packet(payload=b"EVILPAYLOADSIGNATURE", header=one, packet_id=2),
        ]

    @pytest.mark.parametrize("workers", (1, 2))
    def test_alerts_match_serial_scan_flow(self, workers):
        serial = self.build_ids()
        expected = serial.scan_flow(self.traffic())
        assert expected, "the workload must actually raise alerts"
        with self.build_ids(workers=workers) as parallel:
            alerts = parallel.scan_flow(self.traffic())
            assert alerts == expected
            assert parallel.stats.alerts_raised == serial.stats.alerts_raised
            assert parallel.stats.content_matches == serial.stats.content_matches
            assert parallel.stats.header_candidates == serial.stats.header_candidates
            assert parallel.stats.payload_bytes == serial.stats.payload_bytes

    def test_eviction_resets_flow_state_like_serial(self):
        """workers=1 shares the serial path's single LRU table semantics, so
        alert behaviour under eviction pressure must match exactly —
        including the re-alert after a flow is forgotten and re-seen."""
        serial = self.build_ids()
        serial.reset_flows(capacity=1)
        with self.build_ids(workers=1) as parallel:
            parallel.reset_flows(capacity=1)  # pool is rebuilt lazily at this size

            one, two = make_header(1), make_header(2)
            packets = [
                Packet(payload=b"EVILPAYLOAD", header=one, packet_id=0),
                Packet(payload=b"other flow", header=two, packet_id=0),  # evicts flow 1
                Packet(payload=b"SIGNATURE", header=one, packet_id=1),  # no alert: state lost
                Packet(payload=b"EVILPAYLOADSIGNATURE", header=one, packet_id=2),
            ]
            expected = serial.scan_flow(packets)
            alerts = parallel.scan_flow(packets)
            assert alerts == expected
            assert [a.sid for a in alerts].count(1001) == 1

    def test_state_persists_across_scan_flow_calls(self):
        """Multi-content completion and once-per-flow alerting must span
        separate scan_flow calls, exactly like the serial FlowEntry state
        (the worker-side automaton state already does)."""
        serial = self.build_ids()
        with self.build_ids(workers=2) as parallel:
            header = make_header(2)
            batches = [
                [Packet(payload=b"XMALICIOUSSHELLCODEX", header=header, packet_id=0)],
                [Packet(payload=b"QQBACKDOORBEACONQQ", header=header, packet_id=1)],
                [Packet(payload=b"QQBACKDOORBEACONQQ bis", header=header, packet_id=2)],
            ]
            per_call = []
            for batch in batches:
                expected = serial.scan_flow(batch)
                assert parallel.scan_flow(batch) == expected
                per_call.append(expected)
        # the rule completed on the second call and never re-alerted
        assert [[a.sid for a in alerts] for alerts in per_call] == [[], [1002], []]

    def test_parallel_service_requires_workers(self):
        with pytest.raises(ValueError):
            self.build_ids().parallel_service

    def test_workers_validation(self):
        with pytest.raises(ValueError):
            self.build_ids(workers=0)


# ----------------------------------------------------------------------
# satellite bugfix: a dead worker must raise, not hang the dispatcher
# ----------------------------------------------------------------------
def test_dead_worker_raises_instead_of_hanging(crafted_program):
    from repro.streaming import WorkerCrashedError

    packets = [
        Packet(payload=b"EVILPAYLOADSIGNATURE", header=make_header(n), packet_id=0)
        for n in range(4)
    ]
    with ParallelScanService(crafted_program, num_shards=4, workers=2) as service:
        service.scan(packets)  # healthy round first
        victim = service._workers[0]
        victim.process.kill()
        victim.process.join()
        with pytest.raises(WorkerCrashedError, match=r"worker 0 \(shards \[0, 2\]\)"):
            service.scan(packets)


def test_crash_error_names_worker_and_shards(crafted_program):
    from repro.streaming import WorkerCrashedError

    with ParallelScanService(crafted_program, num_shards=4, workers=2) as service:
        victim = service._workers[1]
        victim.process.kill()
        victim.process.join()
        with pytest.raises(WorkerCrashedError) as excinfo:
            service.stats()
        message = str(excinfo.value)
        assert "worker 1" in message and "shards [1, 3]" in message
        assert "exit code" in message
