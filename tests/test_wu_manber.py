"""Tests for the Wu-Manber multi-pattern baseline."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import AhoCorasickDFA, WuManber


def reference(patterns, data):
    return sorted(AhoCorasickDFA.from_patterns(patterns).match(data))


class TestWuManber:
    def test_simple_match(self):
        wm = WuManber([b"abcd", b"efgh"])
        assert sorted(wm.match(b"xxabcdxxefgh")) == [(6, 0), (12, 1)]

    def test_short_patterns_handled(self):
        wm = WuManber([b"a", b"xyz"], block_size=2)
        matches = wm.match(b"a xyz a")
        assert (1, 0) in matches and (7, 0) in matches and (5, 1) in matches

    def test_block_size_three(self):
        patterns = [b"abcdef", b"zzzzz"]
        wm = WuManber(patterns, block_size=3)
        assert sorted(wm.match(b"__abcdef__zzzzz")) == reference(patterns, b"__abcdef__zzzzz")

    def test_overlapping_matches(self):
        wm = WuManber([b"aaa", b"aa"])
        data = b"aaaa"
        assert sorted(wm.match(data)) == reference([b"aaa", b"aa"], data)

    def test_rejects_empty_inputs(self):
        with pytest.raises(ValueError):
            WuManber([])
        with pytest.raises(ValueError):
            WuManber([b""])
        with pytest.raises(ValueError):
            WuManber([b"ok"], block_size=0)

    def test_memory_accounting(self):
        wm = WuManber([b"abcd", b"bcde"])
        assert wm.memory_bytes() > 0

    def test_agrees_with_dfa_on_ruleset(self, small_ruleset, rng):
        from tests.conftest import text_with_patterns

        patterns = small_ruleset.patterns[:50]
        wm = WuManber(patterns)
        data = text_with_patterns(rng, patterns, length=4000)
        assert sorted(wm.match(data)) == reference(patterns, data)


@settings(max_examples=25, deadline=None)
@given(
    patterns=st.lists(
        st.binary(min_size=1, max_size=6), min_size=1, max_size=10, unique=True
    ),
    data=st.binary(max_size=300),
)
def test_wu_manber_matches_dfa_property(patterns, data):
    wm = WuManber(patterns)
    assert sorted(wm.match(data)) == reference(patterns, data)
