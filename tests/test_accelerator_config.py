"""Tests for the end-to-end ruleset -> accelerator compiler."""

import pytest

from repro.automata import AhoCorasickDFA
from repro.core import CompilationError, compile_ruleset
from repro.core.dtp_automaton import HARDWARE_MAX_POINTERS
from repro.fpga import STRATIX_III
from repro.rulesets import RuleSet, generate_snort_like_ruleset


class TestCompile:
    def test_small_ruleset_fits_single_block(self, small_ruleset, small_program):
        assert small_program.blocks_per_group == 1
        assert small_program.packet_groups == STRATIX_III.num_matching_blocks
        assert small_program.total_states > len(small_ruleset)
        assert small_program.throughput_gbps == pytest.approx(44.2, abs=0.2)

    def test_every_block_fits_device_memory(self, small_program):
        for block in small_program.blocks:
            assert block.words_used <= STRATIX_III.state_machine_words
            assert block.dtp.max_pointers_per_state() <= HARDWARE_MAX_POINTERS

    def test_memory_accounting_includes_all_three_memories(self, small_program):
        block = small_program.blocks[0]
        expected = (
            block.packed.memory_bits()
            + block.match_memory.memory_bits()
            + block.lookup.memory_bits()
        )
        assert block.memory_bits() == expected
        assert small_program.total_memory_bytes() == sum(
            b.memory_bytes() for b in small_program.blocks
        )

    def test_match_agrees_with_reference_dfa(self, small_ruleset, small_program, rng):
        from tests.conftest import text_with_patterns

        reference = AhoCorasickDFA.from_patterns(small_ruleset.patterns)
        data = text_with_patterns(rng, small_ruleset.patterns)
        assert sorted(small_program.match(data)) == sorted(reference.match(data))

    def test_string_numbers_map_to_sids(self, small_ruleset, small_program):
        mapping = small_program.string_number_to_sid()
        assert len(mapping) == len(small_ruleset)
        assert set(mapping.values()) == set(small_ruleset.sids)

    def test_multi_block_compile_partitions_matches(self, medium_ruleset, rng):
        from tests.conftest import text_with_patterns

        program = compile_ruleset(medium_ruleset, STRATIX_III, blocks_per_group=2)
        assert program.blocks_per_group == 2
        assert program.packet_groups == 3
        reference = AhoCorasickDFA.from_patterns(medium_ruleset.patterns)
        data = text_with_patterns(rng, medium_ruleset.patterns)
        assert sorted(program.match(data)) == sorted(reference.match(data))

    def test_throughput_scales_inversely_with_blocks(self, medium_ruleset):
        one = compile_ruleset(medium_ruleset, STRATIX_III, blocks_per_group=1)
        two = compile_ruleset(medium_ruleset, STRATIX_III, blocks_per_group=2)
        three = compile_ruleset(medium_ruleset, STRATIX_III, blocks_per_group=3)
        assert one.throughput_gbps == pytest.approx(2 * two.throughput_gbps, rel=0.01)
        assert one.throughput_gbps == pytest.approx(3 * three.throughput_gbps, rel=0.01)

    def test_cyclone_throughput_lower_than_stratix(self, small_program, small_program_cyclone):
        assert small_program_cyclone.throughput_gbps < small_program.throughput_gbps

    def test_staged_counts_and_defaults(self, small_program):
        staged = small_program.staged_counts()
        defaults = small_program.default_pointer_counts()
        assert staged.original > staged.after_d1_d2_d3
        assert defaults["d1"] <= defaults["d1+d2"] <= defaults["d1+d2+d3"]
        assert staged.reduction_percent > 90

    def test_invalid_requests_raise(self, small_ruleset):
        with pytest.raises(CompilationError):
            compile_ruleset(RuleSet(name="empty"), STRATIX_III)
        with pytest.raises(CompilationError):
            compile_ruleset(small_ruleset, STRATIX_III, blocks_per_group=0)
        with pytest.raises(CompilationError):
            compile_ruleset(
                small_ruleset,
                STRATIX_III,
                blocks_per_group=STRATIX_III.num_matching_blocks + 1,
            )

    def test_oversized_ruleset_rejected_with_clear_error(self):
        # A tiny fake device cannot hold even a small ruleset in one block.
        from dataclasses import replace

        tiny = replace(STRATIX_III, state_machine_words=8, num_matching_blocks=2)
        ruleset = generate_snort_like_ruleset(60, seed=5)
        with pytest.raises(CompilationError):
            compile_ruleset(ruleset, tiny)

    def test_scan_packets_resets_between_payloads(self, small_program):
        pattern = small_program.ruleset[0].pattern
        # split the pattern across two packets: it must NOT be reported
        half = len(pattern) // 2 or 1
        results = small_program.scan_packets([pattern[:half], pattern[half:]])
        found_numbers = {number for matches in results for _, number in matches}
        assert 0 not in found_numbers or len(pattern) == 1

    def test_balanced_strategy_still_correct(self, medium_ruleset, rng):
        from tests.conftest import text_with_patterns

        program = compile_ruleset(
            medium_ruleset, STRATIX_III, blocks_per_group=2, partition_strategy="balanced"
        )
        reference = AhoCorasickDFA.from_patterns(medium_ruleset.patterns)
        data = text_with_patterns(rng, medium_ruleset.patterns)
        assert sorted(program.match(data)) == sorted(reference.match(data))
