"""Tests for the Figure 6 length-distribution model."""

import random

import pytest

from repro.rulesets import FIGURE6_DISTRIBUTION, PAPER_RULESET_SIZES, LengthDistribution


def test_reference_distribution_shape():
    dist = FIGURE6_DISTRIBUTION
    # peak between 4 and 13 bytes
    peak_length = max(dist.weights, key=lambda length: dist.weights[length])
    assert 4 <= peak_length <= 13
    # essentially no 1-3 byte strings
    assert all(dist.probability(length) == 0 for length in (1, 2, 3))
    # visible mass beyond 50 bytes (the 50+ bucket of Figure 6)
    assert sum(dist.probability(length) for length in dist.lengths if length >= 50) > 0.01
    # mean in the high-teens like the Snort snapshot (states/strings ~ 17-19)
    assert 14 <= dist.mean() <= 20


def test_paper_sizes_constant():
    assert PAPER_RULESET_SIZES == (500, 634, 1204, 1603, 2588, 6275)


def test_expected_counts_sum_and_shape():
    for total in (100, 634, 2588):
        counts = FIGURE6_DISTRIBUTION.expected_counts(total)
        assert sum(counts.values()) == total
        assert all(count > 0 for count in counts.values())


def test_expected_counts_preserve_proportions():
    counts_small = FIGURE6_DISTRIBUTION.expected_counts(500)
    counts_large = FIGURE6_DISTRIBUTION.expected_counts(5000)
    # the most common length should be the same in both allocations
    assert max(counts_small, key=counts_small.get) == max(counts_large, key=counts_large.get)


def test_sample_lengths_respects_support():
    rng = random.Random(7)
    lengths = FIGURE6_DISTRIBUTION.sample_lengths(500, rng)
    assert len(lengths) == 500
    assert set(lengths) <= set(FIGURE6_DISTRIBUTION.lengths)


def test_bucketed_probabilities_sum_to_one():
    buckets = FIGURE6_DISTRIBUTION.bucketed()
    assert sum(buckets.values()) == pytest.approx(1.0)
    assert "50+" in buckets


def test_from_lengths_empirical():
    dist = LengthDistribution.from_lengths([4, 4, 5, 9])
    assert dist.probability(4) == pytest.approx(0.5)
    assert dist.mean() == pytest.approx(5.5)


def test_validation_errors():
    with pytest.raises(ValueError):
        LengthDistribution(weights={})
    with pytest.raises(ValueError):
        LengthDistribution(weights={0: 1.0})
    with pytest.raises(ValueError):
        LengthDistribution(weights={4: -1.0})
    with pytest.raises(ValueError):
        LengthDistribution(weights={4: 0.0})
