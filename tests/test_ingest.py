"""Live ingestion front-end: every source must feed the scan service the
same bytes an offline replay would, so the event streams stay identical.

The socket tests run the listener and its client inside one event loop;
the captured per-batch packets (``on_batch``) are then re-scanned offline
through a fresh service and compared byte for byte — segmentation,
flow-absolute offsets and cross-segment state all have to line up.
"""

from __future__ import annotations

import asyncio
import io
import socket
import threading
import time

import pytest

from repro.backend import get_backend
from repro.capture import CaptureError, replay_scan, write_packets
from repro.rulesets import RuleSet
from repro.streaming import (
    LiveIngestor,
    ParallelScanService,
    PcapTailSource,
    ScanService,
    TcpListenerSource,
    UdpListenerSource,
)


@pytest.fixture(scope="module")
def workload():
    from tests.conftest import equivalence_workload

    return equivalence_workload(seed=11)


@pytest.fixture(scope="module")
def dense_program(workload):
    from tests.conftest import build_program

    return build_program(workload[0], "dense")


def crafted_program():
    ruleset = RuleSet(name="crafted-ingest")
    ruleset.add_pattern(b"EVILPAYLOADSIGNATURE")
    return get_backend("dense").compile(ruleset.patterns)


def single_record(packet) -> bytes:
    """One pcap record's raw bytes (global header stripped)."""
    buffer = io.BytesIO()
    write_packets(buffer, [packet])
    return buffer.getvalue()[24:]


# ----------------------------------------------------------------------
# pcap tail: the replayed-live acceptance path
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [None, 2])
@pytest.mark.parametrize("batch_packets", [256, 5])
def test_pcap_tail_serve_equals_offline_replay(
    tmp_path, workload, dense_program, workers, batch_packets
):
    """Serving a capture through the live loop — in one batch or many —
    reports exactly the events an offline replay of the same file does."""
    from tests.conftest import renumbered

    _, packets = workload
    path = tmp_path / "workload.pcap"
    with open(path, "wb") as handle:
        write_packets(handle, renumbered(packets))

    def build_service():
        if workers is None:
            return ScanService(dense_program, num_shards=4)
        return ParallelScanService(dense_program, num_shards=4, workers=workers)

    with build_service() as service:
        ingestor = LiveIngestor(service, batch_packets=batch_packets)
        report = ingestor.serve(PcapTailSource(str(path)))
    with ScanService(dense_program, num_shards=4) as offline:
        with open(path, "rb") as handle:
            reference = replay_scan(handle, offline)

    assert report.stop_reason == "source_exhausted"
    assert report.packets == reference.packets
    assert report.payload_bytes == reference.bytes_scanned
    assert report.events == reference.events
    assert report.events, "workload produced no events; equivalence is vacuous"
    if batch_packets == 5:
        assert report.batches > 1  # state genuinely carried across batches


def test_pcap_tail_follow_picks_up_appended_records(tmp_path, workload, dense_program):
    """``--follow``: records appended while serving are scanned as they
    land, and the final event stream equals one offline pass."""
    from tests.conftest import renumbered

    _, packets = workload
    packets = renumbered(packets)
    head, tail = packets[: len(packets) // 2], packets[len(packets) // 2 :]
    path = tmp_path / "growing.pcap"
    with open(path, "wb") as handle:
        write_packets(handle, head)

    with ScanService(dense_program, num_shards=4) as service:
        ingestor = LiveIngestor(
            service, batch_packets=4, max_packets=len(packets)
        )
        source = PcapTailSource(str(path), follow=True, poll_interval=0.02)
        box = {}

        def run():
            box["report"] = ingestor.serve(source)

        thread = threading.Thread(target=run)
        thread.start()
        time.sleep(0.2)  # let the head drain so the append is a real tail
        with open(path, "ab") as handle:
            for packet in tail:
                handle.write(single_record(packet))
        thread.join(timeout=10)
        assert not thread.is_alive()

    report = box["report"]
    with ScanService(dense_program, num_shards=4) as offline:
        reference = offline.scan(packets)
    assert report.stop_reason == "max_packets"
    assert report.packets == len(packets)
    assert report.events == reference.events
    assert source.stats()["records"] == len(packets)


def test_pcap_tail_rejects_pcapng(tmp_path, workload):
    _, packets = workload
    path = tmp_path / "capture.pcapng"
    with open(path, "wb") as handle:
        write_packets(handle, packets, fmt="pcapng")
    source = PcapTailSource(str(path))
    with pytest.raises(CaptureError, match="pcapng"):
        asyncio.run(source.run(lambda header, payload, *rest: None))


def test_pcap_tail_truncated_record_raises(tmp_path, workload):
    from tests.conftest import renumbered

    _, packets = workload
    path = tmp_path / "cut.pcap"
    with open(path, "wb") as handle:
        write_packets(handle, renumbered(packets[:2]))
    data = path.read_bytes()
    path.write_bytes(data[:-7])  # sever the last record mid-payload
    source = PcapTailSource(str(path))
    with pytest.raises(CaptureError, match="truncated"):
        asyncio.run(source.run(lambda header, payload, *rest: None))


# ----------------------------------------------------------------------
# socket listeners
# ----------------------------------------------------------------------
def serve_with_client(source, client, *, service, **ingest_kwargs):
    """Run the ingestion loop and ``client(source)`` in one event loop;
    returns ``(report, captured packets)``."""
    captured = []
    ingest_kwargs.setdefault("on_batch", lambda result, todo: captured.extend(todo))
    ingestor = LiveIngestor(service, **ingest_kwargs)

    async def main():
        run_task = asyncio.create_task(ingestor.run(source))
        await asyncio.wait_for(source.ready(), timeout=5)
        await client(source)
        return await asyncio.wait_for(run_task, timeout=10)

    return asyncio.run(main()), captured


def test_tcp_listener_matches_offline_scan_of_captured_segments():
    """A pattern split across TCP sends is matched with flow-absolute
    offsets, and re-scanning the captured segments offline reproduces the
    live events exactly."""
    program = crafted_program()

    async def client(source):
        reader, writer = await asyncio.open_connection("127.0.0.1", source.bound_port)
        for segment in (b"lead-in EVILPAY", b"LOADSIGNATURE trail"):
            writer.write(segment)
            await writer.drain()
            await asyncio.sleep(0.1)  # keep the two sends two reads
        writer.close()
        await writer.wait_closed()

    with ScanService(program, num_shards=2) as service:
        report, captured = serve_with_client(
            TcpListenerSource(port=0),
            client,
            service=service,
            idle_timeout=0.5,
        )

    assert report.stop_reason == "idle_timeout"
    assert report.packets == len(captured)
    assert len(report.events) == 1
    event = report.events[0]
    assert event.flow.protocol == "tcp"
    # ...EVILPAYLOADSIGNATURE ends at flow offset 15 + 13 = 28
    assert event.end_offset == 28

    with ScanService(program, num_shards=2) as offline:
        reference = offline.scan(captured)
    assert report.events == reference.events


def test_udp_listener_matches_offline_scan_of_datagrams():
    """Datagrams from one peer are one flow: state spans datagrams."""
    program = crafted_program()

    async def client(source):
        sock = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        try:
            sock.connect(("127.0.0.1", source.bound_port))
            for datagram in (b"EVILPAYLOAD", b"SIGNATURE", b"benign"):
                sock.send(datagram)
                await asyncio.sleep(0.05)
        finally:
            sock.close()

    with ScanService(program, num_shards=2) as service:
        report, captured = serve_with_client(
            UdpListenerSource(port=0),
            client,
            service=service,
            max_packets=3,
        )

    assert report.stop_reason == "max_packets"
    assert report.packets == 3
    assert [len(packet.payload) for packet in captured] == [11, 9, 6]
    assert len(report.events) == 1
    event = report.events[0]
    assert event.flow.protocol == "udp"
    assert event.packet_id == 1  # the match completes in the second datagram
    assert event.end_offset == 20

    with ScanService(program, num_shards=2) as offline:
        reference = offline.scan(captured)
    assert report.events == reference.events


def test_idle_timeout_stops_a_silent_listener():
    program = crafted_program()

    async def client(source):
        return None  # never connect

    with ScanService(program, num_shards=2) as service:
        report, captured = serve_with_client(
            TcpListenerSource(port=0), client, service=service, idle_timeout=0.2
        )
    assert report.stop_reason == "idle_timeout"
    assert report.packets == 0 and not captured
    assert report.events == []
    assert report.source_stats == {"connections": 0, "segments": 0}
