"""Cross-module integration tests: the whole pipeline, end to end."""


from repro.automata import AhoCorasickDFA, AhoCorasickNFA, WuManber
from repro.core import DTPAutomaton, compile_ruleset
from repro.fpga import CYCLONE_III, STRATIX_III, PowerModel, estimate_resources
from repro.hardware import HardwareAccelerator
from repro.rulesets import generate_snort_like_ruleset, reduce_ruleset
from repro.traffic import TrafficGenerator, TrafficProfile


def test_ruleset_to_hardware_to_alerts(small_ruleset, small_program):
    """Compile -> simulate -> verify every injected attack string is reported."""
    accelerator = HardwareAccelerator(small_program)
    generator = TrafficGenerator(
        small_ruleset,
        TrafficProfile(mean_payload_bytes=180, attack_probability=0.6, max_injected=2),
        seed=21,
    )
    packets = generator.packets(30)
    result = accelerator.scan(packets)
    alerts = accelerator.alerts_by_sid(result)
    expected_sids = {sid for packet in packets for sid in packet.injected_sids}
    assert expected_sids <= set(alerts)


def test_all_matchers_agree_on_same_ruleset(rng):
    """Five independent implementations must report identical match sets."""
    from tests.conftest import text_with_patterns

    ruleset = generate_snort_like_ruleset(60, seed=77)
    patterns = ruleset.patterns
    data = text_with_patterns(rng, patterns, length=5000)

    reference = sorted(AhoCorasickDFA.from_patterns(patterns).match(data))
    assert sorted(AhoCorasickNFA.from_patterns(patterns).match(data)) == reference
    assert sorted(DTPAutomaton.from_patterns(patterns).match(data)) == reference
    assert sorted(WuManber(patterns).match(data)) == reference
    program = compile_ruleset(ruleset, STRATIX_III)
    assert sorted(program.match(data)) == reference


def test_reduced_rulesets_compile_and_shrink(medium_ruleset):
    """Smaller rulesets need no more memory/blocks than bigger ones."""
    smaller = reduce_ruleset(medium_ruleset, 150, seed=6)
    big = compile_ruleset(medium_ruleset, CYCLONE_III)
    small = compile_ruleset(smaller, CYCLONE_III)
    assert small.total_memory_bytes() < big.total_memory_bytes()
    assert small.blocks_per_group <= big.blocks_per_group
    assert small.throughput_gbps >= big.throughput_gbps


def test_device_report_is_consistent(small_program):
    """Resource, power and throughput models agree on the same configuration."""
    device = small_program.device
    resources = estimate_resources(device)
    power = PowerModel(device)
    assert resources.fits()
    assert power.peak_power_watts() > power.power_watts(0)
    assert small_program.throughput_gbps <= 16 * device.memory_fmax_mhz * 1e6 * device.num_matching_blocks / 1e9


def test_guaranteed_rate_independent_of_content(small_program):
    """Worst-case input does not slow the DTP matcher down (no fail pointers).

    The NFA (failure-function) formulation visits extra states on adversarial
    input; the DTP automaton performs exactly one transition per byte.
    """
    patterns = small_program.ruleset.patterns
    nfa = AhoCorasickNFA.from_patterns(patterns)
    dtp = small_program.blocks[0].dtp

    # adversarial payload: repeat prefixes of real patterns to force failures
    adversarial = b"".join(p[: max(1, len(p) - 1)] for p in patterns[:50]) * 3
    nfa.match(adversarial)
    assert nfa.last_match_stats.visits_per_byte > 1.0

    transitions = sum(1 for _ in dtp.iter_states(adversarial))
    assert transitions == len(adversarial)  # exactly one per byte, by construction
