"""Tests for the streaming flow-scan subsystem.

The regression these pin down is the subsystem's reason to exist: a rule
string split across consecutive packets of one flow is invisible to the
per-packet scan path but must be found by the stateful flow scan.
"""


import pytest

from repro.core import DTPAutomaton, ScanState, compile_ruleset
from repro.fpga import STRATIX_III
from repro.hardware import StringMatchingBlock
from repro.ids import HeaderPattern, IDSRule, IntrusionDetectionSystem
from repro.rulesets import RuleSet
from repro.streaming import (
    FlowEntry,
    FlowKey,
    FlowTable,
    ScanService,
    StreamScanner,
)
from repro.traffic import FiveTuple, Packet, TrafficGenerator

#: The worked example of Figures 1 and 2 (mirrors tests/conftest.py).
PAPER_EXAMPLE_PATTERNS = [b"he", b"she", b"his", b"hers"]


def make_key(n: int = 0) -> FlowKey:
    return FlowKey(f"10.0.0.{n}", "192.168.0.1", 40000 + n, 80, "tcp")


def make_header(n: int = 0) -> FiveTuple:
    return FiveTuple(f"10.0.0.{n}", "192.168.0.1", 40000 + n, 80, "tcp")


@pytest.fixture(scope="module")
def crafted_ruleset() -> RuleSet:
    """Patterns that cannot occur by accident in ASCII background traffic."""
    ruleset = RuleSet(name="crafted")
    ruleset.add_pattern(b"EVILPAYLOADSIGNATURE")
    ruleset.add_pattern(b"XMALICIOUSSHELLCODEX")
    ruleset.add_pattern(b"QQBACKDOORBEACONQQ")
    return ruleset


@pytest.fixture(scope="module")
def crafted_program(crafted_ruleset):
    return compile_ruleset(crafted_ruleset, STRATIX_III)


# ----------------------------------------------------------------------
# resumable scanning at the automaton level
# ----------------------------------------------------------------------
class TestScanFrom:
    def test_scan_state_round_trip(self):
        state = ScanState(state=5, prev1=104, prev2=None, offset=17)
        assert ScanState.from_tuple(state.as_tuple()) == state

    def test_chunked_scan_equals_whole_buffer(self, example_dtp, rng):
        data = b"xxhisxx" + b"ushers" + bytes(rng.randrange(97, 123) for _ in range(400))
        whole = example_dtp.match(data)

        for chunk_size in (1, 2, 3, 7, 64):
            state = example_dtp.initial_scan_state()
            chunked = []
            for start in range(0, len(data), chunk_size):
                matches, state = example_dtp.scan_from(state, data[start:start + chunk_size])
                chunked.extend(matches)
            assert chunked == whole, f"chunk_size={chunk_size}"
            assert state.offset == len(data)

    def test_scan_from_offsets_are_stream_absolute(self):
        dtp = DTPAutomaton.from_patterns([b"abcd"])
        first, state = dtp.scan_from(ScanState(), b"xxab")
        assert first == []
        second, state = dtp.scan_from(state, b"cdab")
        assert second == [(6, 0)]  # match ends at stream offset 6
        assert state.offset == 8

    def test_per_packet_match_resets_history(self):
        dtp = DTPAutomaton.from_patterns([b"abcd"])
        assert dtp.match(b"ab") == [] and dtp.match(b"cd") == []

    def test_program_scan_from_spans_blocks(self, small_program, small_ruleset, rng):
        patterns = [rule.pattern for rule in small_ruleset]
        stream = b"".join(
            bytes(rng.randrange(0, 256) for _ in range(50))
            + patterns[rng.randrange(len(patterns))]
            for _ in range(12)
        )
        whole = small_program.match(stream)
        states = small_program.initial_scan_states()
        chunked = []
        position = 0
        while position < len(stream):
            size = rng.randint(1, 100)
            matches, states = small_program.scan_from(states, stream[position:position + size])
            chunked.extend(matches)
            position += size
        assert sorted(chunked) == sorted(whole)

    def test_program_scan_from_validates_state_count(self, small_program):
        with pytest.raises(ValueError):
            small_program.scan_from((ScanState(),) * (len(small_program.blocks) + 1), b"x")


# ----------------------------------------------------------------------
# flow table
# ----------------------------------------------------------------------
class TestFlowTable:
    @staticmethod
    def entry(n: int) -> FlowEntry:
        return FlowEntry(key=make_key(n), states=(ScanState(),))

    def test_lru_eviction_order(self):
        evicted = []
        table = FlowTable(capacity=2, on_evict=evicted.append)
        table.insert(self.entry(1))
        table.insert(self.entry(2))
        # touch flow 1 so flow 2 becomes the LRU victim
        assert table.lookup(make_key(1)) is not None
        table.insert(self.entry(3))
        assert len(table) == 2
        assert [e.key for e in evicted] == [make_key(2)]
        assert make_key(1) in table and make_key(3) in table
        assert table.stats.evicted == 1

    def test_evicted_flow_restarts_fresh(self, crafted_program, crafted_ruleset):
        scanner = StreamScanner(crafted_program, FlowTable(capacity=1))
        pattern = crafted_ruleset[0].pattern
        scanner.scan_segment(make_key(1), pattern[:8])
        # flow 2 pushes flow 1 out of the single-entry table
        scanner.scan_segment(make_key(2), b"unrelated")
        matches = scanner.scan_segment(make_key(1), pattern[8:])
        assert matches == []  # the head fragment was forgotten with the state
        assert scanner.flows.stats.evicted == 2

    def test_lookup_miss_and_remove(self):
        table = FlowTable(capacity=4)
        assert table.lookup(make_key(9)) is None
        table.insert(self.entry(1))
        assert table.remove(make_key(1)).key == make_key(1)
        assert table.remove(make_key(1)) is None
        assert table.stats.evicted == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            FlowTable(capacity=0)

    def test_peek_does_not_touch_recency_or_stats(self):
        table = FlowTable(capacity=2)
        table.insert(self.entry(1))
        table.insert(self.entry(2))
        lookups_before = table.stats.lookups
        assert table.peek(make_key(1)) is not None
        assert table.stats.lookups == lookups_before
        table.insert(self.entry(3))  # flow 1 is still the LRU victim
        assert make_key(1) not in table

    def test_restore_respects_capacity_override(self):
        table = FlowTable(capacity=8)
        for n in range(4):
            table.insert(self.entry(n))
        restored = FlowTable.restore(table.checkpoint(), capacity=2)
        assert restored.capacity == 2 and len(restored) == 2
        # the most recently used flows survive
        assert make_key(2) in restored and make_key(3) in restored

    def test_checkpoint_restore_round_trip(self):
        table = FlowTable(capacity=8)
        entry = self.entry(1)
        entry.states = (ScanState(state=3, prev1=104, prev2=101, offset=42),)
        entry.matched.add(7)
        entry.alerted.add(99)
        entry.packets = 3
        table.insert(entry)
        restored = FlowTable.restore(table.checkpoint())
        assert restored.capacity == 8
        back = restored.lookup(make_key(1))
        assert back.states == entry.states
        assert back.matched == {7} and back.alerted == {99} and back.packets == 3


# ----------------------------------------------------------------------
# cross-packet matching (the tentpole regression)
# ----------------------------------------------------------------------
class TestCrossPacketMatching:
    @pytest.mark.parametrize("cut", [1, 5, 10, 19])
    def test_two_segment_split(self, crafted_program, crafted_ruleset, cut):
        pattern = crafted_ruleset[0].pattern
        segments = [b"padding " + pattern[:cut], pattern[cut:] + b" trailer"]
        header = make_header(1)
        packets = [
            Packet(payload=payload, header=header, packet_id=i)
            for i, payload in enumerate(segments)
        ]
        # per-packet scanning misses the split pattern...
        for packet in packets:
            assert crafted_program.match(packet.payload) == []
        # ...stateful scanning finds it, at the reassembled-stream offset
        scanner = StreamScanner(crafted_program)
        matches = scanner.scan_packets(packets)
        assert [m.string_number for m in matches] == [0]
        assert matches[0].end_offset == len(b"padding ") + len(pattern)
        assert scanner.stats.cross_segment_matches == 1

    def test_three_segment_split(self, crafted_program, crafted_ruleset):
        pattern = crafted_ruleset[1].pattern
        segments = [b"aa " + pattern[:4], pattern[4:11], pattern[11:] + b" zz"]
        header = make_header(2)
        packets = [
            Packet(payload=payload, header=header, packet_id=i)
            for i, payload in enumerate(segments)
        ]
        for packet in packets:
            assert crafted_program.match(packet.payload) == []
        matches = StreamScanner(crafted_program).scan_packets(packets)
        assert [m.string_number for m in matches] == [1]

    def test_byte_at_a_time_flow(self, crafted_program, crafted_ruleset):
        """The pathological segmentation: every packet carries one byte."""
        pattern = crafted_ruleset[2].pattern
        header = make_header(3)
        packets = [
            Packet(payload=bytes([byte]), header=header, packet_id=i)
            for i, byte in enumerate(pattern)
        ]
        matches = StreamScanner(crafted_program).scan_packets(packets)
        assert [(m.string_number, m.end_offset) for m in matches] == [(2, len(pattern))]

    def test_nocase_view_reports_lowercase_occurrence_once(self):
        """An already-lowercase occurrence matches in both views; one event."""
        ruleset = RuleSet(name="lower")
        ruleset.add_pattern(b"lowercasesignature")
        program = compile_ruleset(ruleset, STRATIX_III)
        scanner = StreamScanner(program, track_nocase=True)
        matches = scanner.scan_segment(make_key(1), b"xx lowercasesignature yy")
        assert len(matches) == 1 and not matches[0].lowered
        # a genuinely mixed-case occurrence is still caught, via the lowered view
        mixed = scanner.scan_segment(make_key(2), b"LowerCaseSignature")
        assert len(mixed) == 1 and mixed[0].lowered

    def test_lowered_view_rebuilt_at_stream_offset(self):
        """A checkpoint without nocase state, restored under a nocase scanner,
        regains case-insensitive matching with flow-absolute offsets."""
        ruleset = RuleSet(name="lower2")
        ruleset.add_pattern(b"lowercasesignature")
        program = compile_ruleset(ruleset, STRATIX_III)
        plain = StreamScanner(program, track_nocase=False)
        plain.scan_segment(make_key(1), b"0123456789")  # 10 bytes of prologue
        snapshot = plain.flows.checkpoint()

        nocase = StreamScanner(program, track_nocase=True)
        nocase.flows = FlowTable.restore(snapshot)
        matches = nocase.scan_segment(make_key(1), b"xx LowerCaseSignature")
        assert [m.lowered for m in matches] == [True]
        assert matches[0].end_offset == 10 + len(b"xx LowerCaseSignature")
        # an already-lowercase hit is still reported once, not per view
        again = nocase.scan_segment(make_key(1), b" lowercasesignature")
        assert len(again) == 1 and not again[0].lowered

    def test_independent_flows_do_not_share_state(self, crafted_program, crafted_ruleset):
        """Fragments from different flows must never combine into a match."""
        pattern = crafted_ruleset[0].pattern
        scanner = StreamScanner(crafted_program)
        scanner.scan_segment(make_key(1), pattern[:10])
        assert scanner.scan_segment(make_key(2), pattern[10:]) == []
        # while the real continuation still completes
        assert scanner.scan_segment(make_key(1), pattern[10:]) != []


# ----------------------------------------------------------------------
# sharded scan service
# ----------------------------------------------------------------------
class TestScanService:
    def test_flow_sticks_to_one_shard(self, crafted_program):
        service = ScanService(crafted_program, num_shards=4)
        for n in range(50):
            shard = service.shard_for(make_key(n))
            assert shard == service.shard_for(make_key(n))
            assert 0 <= shard < 4

    def test_interleaved_flows_all_detected(self, small_program, small_ruleset):
        generator = TrafficGenerator(small_ruleset, seed=31)
        flows = generator.flows(
            10, num_packets=4, split_patterns=1, segment_bytes=120
        )
        packets = TrafficGenerator.interleave(flows)
        service = ScanService(small_program, num_shards=3)
        result = service.scan(packets)
        sid_of = {index: rule.sid for index, rule in enumerate(small_ruleset)}
        for flow in flows:
            key = StreamScanner.flow_key(flow.packets[0])
            streamed = {sid_of[e.string_number] for e in result.events_for_flow(key)}
            assert set(flow.split_sids) <= streamed
        assert result.packets == len(packets)
        assert result.bytes_scanned == sum(len(p.payload) for p in packets)
        assert service.active_flows == 10
        assert sum(report.packets for report in result.shards) == len(packets)
        assert service.cross_segment_matches >= 10

    def test_submit_single_packet(self, crafted_program, crafted_ruleset):
        service = ScanService(crafted_program, num_shards=2)
        pattern = crafted_ruleset[0].pattern
        header = make_header(4)
        first = service.submit(Packet(payload=pattern[:6], header=header, packet_id=0))
        second = service.submit(Packet(payload=pattern[6:], header=header, packet_id=1))
        assert first == [] and [m.string_number for m in second] == [0]

    def test_shard_report_evictions_are_per_batch(self, crafted_program):
        service = ScanService(crafted_program, num_shards=1, flow_capacity_per_shard=1)
        first = service.scan(
            [Packet(payload=b"a", header=make_header(n), packet_id=n) for n in range(3)]
        )
        assert sum(r.evicted_flows for r in first.shards) == 2
        # a quiet second batch must not re-report the first batch's evictions
        second = service.scan([Packet(payload=b"b", header=make_header(2), packet_id=9)])
        assert sum(r.evicted_flows for r in second.shards) == 0
        assert service.evicted_flows == 2  # lifetime counter unchanged

    def test_checkpoint_restore_resumes_mid_flow(self, crafted_program, crafted_ruleset):
        pattern = crafted_ruleset[0].pattern
        header = make_header(5)
        service = ScanService(crafted_program, num_shards=2)
        assert service.submit(Packet(payload=pattern[:9], header=header, packet_id=0)) == []

        snapshot = service.checkpoint()
        resumed = ScanService(crafted_program, num_shards=2)
        resumed.restore(snapshot)
        matches = resumed.submit(Packet(payload=pattern[9:], header=header, packet_id=1))
        assert [m.string_number for m in matches] == [0]

    def test_restore_keeps_configured_capacity(self, crafted_program):
        snapshot = ScanService(
            crafted_program, num_shards=2, flow_capacity_per_shard=4096
        ).checkpoint()
        small = ScanService(crafted_program, num_shards=2, flow_capacity_per_shard=8)
        small.restore(snapshot)
        assert all(engine.flows.capacity == 8 for engine in small.engines)

    def test_restore_rejects_shard_mismatch(self, crafted_program):
        snapshot = ScanService(crafted_program, num_shards=2).checkpoint()
        with pytest.raises(ValueError):
            ScanService(crafted_program, num_shards=3).restore(snapshot)

    def test_num_shards_validation(self, crafted_program):
        with pytest.raises(ValueError):
            ScanService(crafted_program, num_shards=0)


# ----------------------------------------------------------------------
# multi-packet flow generation
# ----------------------------------------------------------------------
class TestFlowGeneration:
    def test_split_pattern_spans_boundary(self, small_ruleset):
        generator = TrafficGenerator(small_ruleset, seed=13)
        flow = generator.flow(num_packets=4, split_patterns=1)
        assert len(flow.packets) == 4
        assert len(flow.split_sids) == 1
        pattern = next(
            rule.pattern for rule in small_ruleset if rule.sid == flow.split_sids[0]
        )
        assert pattern in flow.payload
        assert all(packet.header == flow.header for packet in flow.packets)

    def test_three_segment_split_occupies_middle(self, small_ruleset):
        generator = TrafficGenerator(small_ruleset, seed=17)
        flow = generator.flow(num_packets=3, split_patterns=1, split_segments=3)
        pattern = next(
            rule.pattern for rule in small_ruleset if rule.sid == flow.split_sids[0]
        )
        assert pattern in flow.payload
        # the middle segment is exactly the pattern's middle fragment
        assert flow.packets[1].payload in pattern

    def test_whole_patterns_recorded_in_ground_truth(self, small_ruleset):
        generator = TrafficGenerator(small_ruleset, seed=19)
        flow = generator.flow(num_packets=2, split_patterns=0, whole_patterns=2)
        assert len(flow.injected_sids) == 2 and flow.split_sids == []
        for sid in flow.injected_sids:
            pattern = next(rule.pattern for rule in small_ruleset if rule.sid == sid)
            assert any(pattern in packet.payload for packet in flow.packets)

    def test_flow_determinism(self, small_ruleset):
        first = TrafficGenerator(small_ruleset, seed=23).flow(num_packets=5)
        second = TrafficGenerator(small_ruleset, seed=23).flow(num_packets=5)
        assert [p.payload for p in first.packets] == [p.payload for p in second.packets]

    def test_interleave_preserves_per_flow_order(self, small_ruleset):
        generator = TrafficGenerator(small_ruleset, seed=29)
        flows = generator.flows(3, num_packets=3)
        merged = TrafficGenerator.interleave(flows)
        assert len(merged) == 9
        for flow in flows:
            ids = [p.packet_id for p in merged if p.header == flow.header]
            assert ids == [p.packet_id for p in flow.packets]

    def test_validation_errors(self, small_ruleset):
        generator = TrafficGenerator(small_ruleset, seed=1)
        with pytest.raises(ValueError):
            generator.flow(num_packets=0)
        with pytest.raises(ValueError):
            generator.flow(num_packets=1, split_patterns=1, split_segments=2)
        with pytest.raises(ValueError):
            generator.flow(num_packets=4, split_segments=4)
        with pytest.raises(ValueError):
            TrafficGenerator(None, seed=1).flow(split_patterns=1)


# ----------------------------------------------------------------------
# IDS entry point
# ----------------------------------------------------------------------
class TestIDSScanFlow:
    @staticmethod
    def build_ids() -> IntrusionDetectionSystem:
        rules = [
            IDSRule(
                sid=1001,
                header=HeaderPattern(protocol="tcp", dst_port="80"),
                contents=(b"EVILPAYLOADSIGNATURE",),
                msg="split signature",
            ),
            IDSRule(
                sid=1002,
                header=HeaderPattern(protocol="tcp"),
                contents=(b"XMALICIOUSSHELLCODEX", b"QQBACKDOORBEACONQQ"),
                msg="two contents",
            ),
        ]
        return IntrusionDetectionSystem(rules)

    def test_split_content_alerts_only_with_scan_flow(self):
        ids = self.build_ids()
        pattern = b"EVILPAYLOADSIGNATURE"
        header = make_header(1)
        packets = [
            Packet(payload=b"GET " + pattern[:7], header=header, packet_id=0),
            Packet(payload=pattern[7:] + b"\r\n", header=header, packet_id=1),
        ]
        assert ids.process(packets) == []  # stateless path misses the split
        alerts = ids.scan_flow(packets)
        assert [a.sid for a in alerts] == [1001]
        assert alerts[0].packet_id == 1  # completed in the second segment

    def test_multi_content_rule_completes_across_segments(self):
        ids = self.build_ids()
        header = make_header(2)
        packets = [
            Packet(payload=b"XMALICIOUSSHELLCODEX", header=header, packet_id=0),
            Packet(payload=b"filler", header=header, packet_id=1),
            Packet(payload=b"QQBACKDOOR", header=header, packet_id=2),
            Packet(payload=b"BEACONQQ", header=header, packet_id=3),
        ]
        alerts = ids.scan_flow(packets)
        assert [(a.sid, a.packet_id) for a in alerts] == [(1002, 3)]

    def test_alert_raised_once_per_flow(self):
        ids = self.build_ids()
        header = make_header(3)
        packets = [
            Packet(payload=b"EVILPAYLOADSIGNATURE", header=header, packet_id=i)
            for i in range(3)
        ]
        alerts = ids.scan_flow(packets)
        assert [a.sid for a in alerts] == [1001]

    def test_header_mismatch_suppresses_alert(self):
        ids = self.build_ids()
        header = FiveTuple("10.0.0.1", "192.168.0.1", 40000, 443, "tcp")  # not port 80
        packets = [
            Packet(payload=b"EVILPAYLOAD", header=header, packet_id=0),
            Packet(payload=b"SIGNATURE", header=header, packet_id=1),
        ]
        assert [a.sid for a in ids.scan_flow(packets)] == []

    def test_nocase_content_across_segments(self):
        rules = [
            IDSRule(
                sid=2001,
                header=HeaderPattern(),
                contents=(b"evilpayloadsignature",),
                nocase=(True,),
            )
        ]
        ids = IntrusionDetectionSystem(rules)
        header = make_header(4)
        packets = [
            Packet(payload=b"EvIlPaYlOaD", header=header, packet_id=0),
            Packet(payload=b"SiGnAtUrE", header=header, packet_id=1),
        ]
        assert [a.sid for a in ids.scan_flow(packets)] == [2001]

    def test_reset_flows_drops_state(self):
        ids = self.build_ids()
        header = make_header(5)
        ids.scan_flow([Packet(payload=b"EVILPAYLOAD", header=header, packet_id=0)])
        ids.reset_flows()
        alerts = ids.scan_flow([Packet(payload=b"SIGNATURE", header=header, packet_id=1)])
        assert alerts == []


# ----------------------------------------------------------------------
# hardware engine checkpointing
# ----------------------------------------------------------------------
class TestEngineCheckpointing:
    def test_resumed_engine_matches_contiguous_scan(self):
        """Suspend a flow mid-stream, resume on another engine, same matches."""
        ruleset = RuleSet(name="paper-example")
        for pattern in PAPER_EXAMPLE_PATTERNS:
            ruleset.add_pattern(pattern)
        program = compile_ruleset(ruleset, STRATIX_III)
        block = StringMatchingBlock(program.blocks[0])
        stream = b"xxshershe his"

        engine_a, engine_b = block.engines[0], block.engines[1]
        matched_offsets = []
        engine_a.start_packet(packet_id=7)
        for cycle, byte in enumerate(stream[:6]):
            match = engine_a.process_byte(byte, cycle)
            if match is not None:
                matched_offsets.append(match.end_offset)
        checkpoint = engine_a.export_flow_state()
        assert checkpoint.offset == 6

        engine_b.resume_flow(checkpoint, packet_id=8)
        for cycle, byte in enumerate(stream[6:], start=100):
            match = engine_b.process_byte(byte, cycle)
            if match is not None:
                matched_offsets.append(match.end_offset)

        expected = [offset for offset, _ in program.blocks[0].dtp.match(stream)]
        assert sorted(matched_offsets) == sorted(set(expected))

    def test_export_requires_packet_in_flight(self, small_program):
        block = StringMatchingBlock(small_program.blocks[0])
        with pytest.raises(RuntimeError):
            block.engines[0].export_flow_state()
