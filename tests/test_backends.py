"""Tests for the unified MatcherBackend protocol and the dense fast path.

The heart of this file is the randomized cross-backend equivalence test: for
seeded random pattern sets and payloads — delivered whole and chunked at
every split point — every registered backend must report the identical match
set as the reference Aho-Corasick DFA.  That property is what lets the
streaming layer, the IDS and the CLI treat backends as interchangeable.
"""

import json
import random

import pytest

from repro.automata import AhoCorasickDFA
from repro.backend import (
    ScanState,
    all_backends,
    backend_names,
    get_backend,
)
from repro.core import CompiledDenseProgram, DTPAutomaton, compile_ruleset
from repro.core.compiled import VECTOR_MIN_CHUNK
from repro.fpga import STRATIX_III
from repro.hardware import HardwareAccelerator
from repro.ids import IDSRule, IntrusionDetectionSystem
from repro.ids.classifier import HeaderPattern
from repro.rulesets import generate_snort_like_ruleset
from repro.streaming import FlowKey, FlowTable, StreamScanner
from repro.traffic import TrafficGenerator

ALL_BACKENDS = ("ac", "bitmap", "dense", "dtp", "path", "wu-manber")


def random_patterns(rng, count, alphabet=b"abcd", max_len=6):
    patterns = []
    for _ in range(count):
        length = rng.randint(1, max_len)
        patterns.append(bytes(rng.choice(alphabet) for _ in range(length)))
    # duplicates are legal; keep them to exercise duplicate pattern ids
    return patterns


def random_payload(rng, patterns, length=90, alphabet=b"abcd"):
    payload = bytearray(rng.choice(alphabet) for _ in range(length))
    # embed a few patterns so the match set is never trivially empty
    for pattern in rng.sample(patterns, min(3, len(patterns))):
        position = rng.randrange(0, max(1, length - len(pattern)))
        payload[position:position + len(pattern)] = pattern
    return bytes(payload)


class TestRegistry:
    def test_all_six_backends_registered(self):
        assert set(ALL_BACKENDS) <= set(backend_names())

    def test_unknown_backend_raises_with_listing(self):
        with pytest.raises(KeyError, match="dense"):
            get_backend("no-such-backend")

    def test_compiled_programs_expose_protocol_surface(self):
        patterns = (b"abc", b"bd")
        for backend in all_backends():
            program = backend.compile(patterns)
            assert program.backend_name == backend.name
            assert tuple(program.patterns) == patterns
            states = program.initial_scan_states()
            assert all(isinstance(s, ScanState) for s in states)


class TestCrossBackendEquivalence:
    """Satellite: seeded random workloads, all backends vs the reference DFA."""

    @pytest.mark.parametrize("seed", [1, 7, 42])
    def test_whole_payload_equivalence(self, seed):
        rng = random.Random(seed)
        patterns = random_patterns(rng, count=8)
        reference = AhoCorasickDFA.from_patterns(patterns)
        payload = random_payload(rng, patterns)
        expected = sorted(reference.match(payload))
        assert expected, "workload should produce matches"
        for name in ALL_BACKENDS:
            program = get_backend(name).compile(patterns)
            assert sorted(program.match(payload)) == expected, name

    @pytest.mark.parametrize("seed", [3, 11])
    def test_chunked_delivery_at_every_split_point(self, seed):
        rng = random.Random(seed)
        patterns = random_patterns(rng, count=6)
        reference = AhoCorasickDFA.from_patterns(patterns)
        payload = random_payload(rng, patterns, length=60)
        expected = sorted(reference.match(payload))
        for name in ALL_BACKENDS:
            program = get_backend(name).compile(patterns)
            for split in range(len(payload) + 1):
                states = program.initial_scan_states()
                first, states = program.scan_from(states, payload[:split])
                second, states = program.scan_from(states, payload[split:])
                assert sorted(list(first) + list(second)) == expected, (name, split)

    def test_three_chunk_delivery(self):
        rng = random.Random(99)
        patterns = random_patterns(rng, count=5)
        reference = AhoCorasickDFA.from_patterns(patterns)
        payload = random_payload(rng, patterns, length=45)
        expected = sorted(reference.match(payload))
        cuts = (0, 10, 17, 31, len(payload))
        for name in ALL_BACKENDS:
            program = get_backend(name).compile(patterns)
            states = program.initial_scan_states()
            collected = []
            for start, stop in zip(cuts, cuts[1:]):
                matches, states = program.scan_from(states, payload[start:stop])
                collected.extend(matches)
            assert sorted(collected) == expected, name

    def test_device_compiled_program_matches_generic_backends(self):
        """The multi-block AcceleratorProgram honours the same contract."""
        ruleset = generate_snort_like_ruleset(40, seed=9)
        program = compile_ruleset(ruleset, STRATIX_III)
        dense = get_backend("dense").compile(ruleset.patterns)
        payload = b"##".join(rule.pattern for rule in ruleset)[:400]
        assert sorted(program.match(payload)) == sorted(dense.match(payload))
        for split in (0, 13, 200, len(payload)):
            states = program.initial_scan_states()
            first, states = program.scan_from(states, payload[:split])
            second, states = program.scan_from(states, payload[split:])
            assert sorted(list(first) + list(second)) == sorted(dense.match(payload))


class TestScanState:
    def test_from_tuple_coerces_floats(self):
        """Satellite: JSON checkpoints with float fields must not poison
        the integer history comparisons of the default-transition lookup."""
        restored = ScanState.from_tuple((3.0, 97.0, 98.0, 12.0))
        assert restored == ScanState(state=3, prev1=97, prev2=98, offset=12)
        assert isinstance(restored.prev1, int)
        assert isinstance(restored.prev2, int)

    def test_from_tuple_keeps_none_history(self):
        restored = ScanState.from_tuple((0, None, None, 0))
        assert restored.prev1 is None and restored.prev2 is None

    def test_float_checkpoint_resumes_identically(self):
        dtp = DTPAutomaton.from_patterns([b"abab", b"bab"])
        stream = b"xxababxbabab"
        _, mid = dtp.scan_from(ScanState(), stream[:5])
        # simulate a float-typed JSON round trip of the checkpoint
        contaminated = ScanState.from_tuple(tuple(map(
            lambda v: float(v) if v is not None else None, mid.as_tuple()
        )))
        clean_matches, _ = dtp.scan_from(mid, stream[5:])
        restored_matches, _ = dtp.scan_from(contaminated, stream[5:])
        assert restored_matches == clean_matches

    def test_tail_round_trips_through_json(self):
        state = ScanState(offset=7, tail=b"\x00\xffab")
        decoded = ScanState.from_tuple(json.loads(json.dumps(state.as_tuple())))
        assert decoded == state

    def test_legacy_four_tuple_still_restores(self):
        assert ScanState.from_tuple((5, 1, 2, 9)) == ScanState(5, 1, 2, 9)


class TestStreamingAcrossBackends:
    @pytest.mark.parametrize("name", ["dense", "ac", "wu-manber"])
    def test_stream_scanner_equals_dtp_on_split_flows(self, name):
        from tests.conftest import assert_equivalent_events

        ruleset = generate_snort_like_ruleset(30, seed=6)
        flows = TrafficGenerator(ruleset, seed=7).flows(
            5, num_packets=3, split_patterns=1
        )
        packets = TrafficGenerator.interleave(flows)
        reference = assert_equivalent_events(
            ruleset,
            packets,
            backends=("dtp", name),
            worker_counts=(None,),
            sources=("memory",),
            num_shards=2,
        )
        assert reference.events, "boundary-split flows should produce events"

    def test_wu_manber_flow_checkpoint_restores(self):
        """The tail carry buffer must survive the JSON flow-table checkpoint."""
        patterns = [b"needle"]
        program = get_backend("wu-manber").compile(patterns)
        scanner = StreamScanner(program, capacity=4)
        key = FlowKey("1.1.1.1", "2.2.2.2", 1, 2, "tcp")
        scanner.scan_segment(key, b"xxxxneed", packet_id=0)
        checkpoint = json.loads(json.dumps(scanner.flows.checkpoint()))
        scanner.flows = FlowTable.restore(checkpoint)
        matches = scanner.scan_segment(key, b"le-and-more", packet_id=1)
        assert [(m.end_offset, m.string_number) for m in matches] == [(10, 0)]


class TestDenseProgram:
    def test_from_automaton_accepts_dfa_and_dtp(self):
        patterns = [b"cat", b"attack"]
        dfa = AhoCorasickDFA.from_patterns(patterns)
        payload = b"a cat attack!"
        expected = sorted(dfa.match(payload))
        from_dfa = CompiledDenseProgram.from_automaton(dfa)
        from_dtp = CompiledDenseProgram.from_automaton(DTPAutomaton(dfa))
        assert sorted(from_dfa.match(payload)) == expected
        assert sorted(from_dtp.match(payload)) == expected

    def test_from_automaton_rejects_unknown_objects(self):
        with pytest.raises(TypeError):
            CompiledDenseProgram.from_automaton(object())

    def test_packed_match_arrays_mirror_outputs(self):
        program = CompiledDenseProgram.from_patterns([b"ab", b"b", b"ab"])
        dfa = AhoCorasickDFA.from_patterns([b"ab", b"b", b"ab"])
        for state in range(program.num_states):
            assert sorted(program.matches_of(state)) == sorted(dfa.outputs[state])

    def test_root_skip_path_agrees_with_plain_loop(self):
        # rare starter bytes + a long chunk force the vectorised skip path
        patterns = [b"\xf0\xf1rare", b"\xf5odd"]
        program = CompiledDenseProgram.from_patterns(patterns)
        rng = random.Random(5)
        payload = bytearray(rng.randrange(97, 123) for _ in range(4 * VECTOR_MIN_CHUNK))
        payload[50:56] = b"\xf0\xf1rare"
        payload[200:204] = b"\xf5odd"
        payload = bytes(payload)
        reference = AhoCorasickDFA.from_patterns(patterns)
        assert sorted(program.match(payload)) == sorted(reference.match(payload))
        # resuming mid-pattern must survive the skip optimisation too
        states = program.initial_scan_states()
        first, states = program.scan_from(states, payload[:52])
        second, _ = program.scan_from(states, payload[52:])
        assert sorted(list(first) + list(second)) == sorted(reference.match(payload))

    def test_memory_accounting(self):
        import sys

        program = CompiledDenseProgram.from_patterns([b"abc"])
        array_bytes = (
            program.table.nbytes + program.match_index.nbytes + program.match_pids.nbytes
        )
        # the footprint must cover the hot-loop flat list, not just the arrays
        assert program.memory_bytes() >= array_bytes + sys.getsizeof(program._flat)
        assert program.memory_words() == -(-program.memory_bytes() * 8 // 324)


class TestConsumersThroughProtocol:
    def test_ids_alerts_identical_across_backends(self):
        ruleset = generate_snort_like_ruleset(25, seed=4)
        rules = [
            IDSRule(sid=rule.sid, header=HeaderPattern(), contents=(rule.pattern,))
            for rule in ruleset
        ]
        flows = TrafficGenerator(ruleset, seed=5).flows(4, num_packets=3, split_patterns=1)
        packets = TrafficGenerator.interleave(flows)

        def alerts_with(backend):
            ids = IntrusionDetectionSystem(rules, backend=backend)
            return [(a.packet_id, a.sid) for a in ids.scan_flow(packets)]

        reference = alerts_with("dtp")
        assert reference
        for name in ("dense", "ac", "bitmap"):
            assert alerts_with(name) == reference, name

    def test_ids_rejects_hardware_model_on_non_dtp_backend(self):
        rules = [IDSRule(sid=1, header=HeaderPattern(), contents=(b"x",))]
        with pytest.raises(ValueError, match="dtp"):
            IntrusionDetectionSystem(rules, use_hardware_model=True, backend="dense")

    def test_hardware_accelerator_protocol_front(self):
        ruleset = generate_snort_like_ruleset(20, seed=8)
        program = compile_ruleset(ruleset, STRATIX_III)
        accelerator = HardwareAccelerator(program)
        payloads = [b"xx" + rule.pattern + b"yy" for rule in list(ruleset)[:4]]
        # the cycle model's protocol surface reports what the program reports
        assert accelerator.patterns == program.patterns
        for payload in payloads:
            assert sorted(accelerator.match(payload)) == sorted(program.match(payload))
        batched = accelerator.scan_packets(payloads)
        assert [sorted(m) for m in batched] == [
            sorted(program.match(p)) for p in payloads
        ]
