"""Tests for the Tuck et al. bitmap and path-compressed AC reimplementations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import (
    AhoCorasickDFA,
    BitmapAhoCorasick,
    BitmapNodeLayout,
    PathCompressedAhoCorasick,
    PathNodeLayout,
)


def reference(patterns, data):
    return sorted(AhoCorasickDFA.from_patterns(patterns).match(data))


class TestBitmapAC:
    def test_matches_reference(self, small_ruleset, rng):
        from tests.conftest import text_with_patterns

        patterns = small_ruleset.patterns[:40]
        bitmap = BitmapAhoCorasick.from_patterns(patterns)
        data = text_with_patterns(rng, patterns)
        assert sorted(bitmap.match(data)) == reference(patterns, data)

    def test_child_lookup_uses_popcount(self):
        bitmap = BitmapAhoCorasick.from_patterns([b"ab", b"ad", b"af"])
        root_children = bitmap.children_arrays[0]
        assert len(root_children) == 1  # only 'a' leaves the root
        a_state = bitmap._child(0, ord("a"))
        assert a_state is not None
        assert bitmap._child(a_state, ord("d")) is not None
        assert bitmap._child(a_state, ord("x")) is None

    def test_memory_scales_with_states(self):
        small = BitmapAhoCorasick.from_patterns([b"ab"])
        large = BitmapAhoCorasick.from_patterns([b"abcdefgh", b"ijklmnop"])
        assert large.memory_bytes() > small.memory_bytes()
        assert small.memory_bytes() == small.num_states * small.layout.node_bits // 8

    def test_custom_layout(self):
        layout = BitmapNodeLayout(failure_pointer_bits=16, child_pointer_bits=16)
        bitmap = BitmapAhoCorasick.from_patterns([b"ab"], layout=layout)
        default = BitmapAhoCorasick.from_patterns([b"ab"])
        assert bitmap.memory_bytes() < default.memory_bytes()


class TestPathCompressedAC:
    def test_matches_reference(self, small_ruleset, rng):
        from tests.conftest import text_with_patterns

        patterns = small_ruleset.patterns[:40]
        compressed = PathCompressedAhoCorasick.from_patterns(patterns)
        data = text_with_patterns(rng, patterns)
        assert sorted(compressed.match(data)) == reference(patterns, data)

    def test_long_chain_is_compressed(self):
        compressed = PathCompressedAhoCorasick.from_patterns([b"abcdefghij"])
        # 10 trie states below the root collapse into root node + path nodes
        assert compressed.num_nodes < 11
        assert compressed.num_path_nodes >= 1
        assert compressed.compression_ratio() > 1.0

    def test_branching_states_stay_branch_nodes(self):
        compressed = PathCompressedAhoCorasick.from_patterns([b"abc", b"abd"])
        # "ab" has two children so it must remain addressable as a branch node
        assert compressed.num_branch_nodes >= 3  # root, 'a'?, 'ab', terminals

    def test_match_states_not_swallowed(self):
        # "ab" is a match point inside the chain of "abcd"; compression must
        # not hide it.
        compressed = PathCompressedAhoCorasick.from_patterns([b"abcd", b"ab"])
        assert sorted(compressed.match(b"abcd")) == reference([b"abcd", b"ab"], b"abcd")

    def test_memory_less_than_bitmap_for_chains(self):
        patterns = [bytes([65 + i]) + b"0123456789abcdef" for i in range(10)]
        bitmap = BitmapAhoCorasick.from_patterns(patterns)
        compressed = PathCompressedAhoCorasick.from_patterns(patterns)
        assert compressed.memory_bytes() < bitmap.memory_bytes()

    def test_path_node_respects_max_length(self):
        layout = PathNodeLayout(max_path_length=4)
        compressed = PathCompressedAhoCorasick.from_patterns([b"abcdefghijkl"], layout=layout)
        for node in compressed.nodes:
            if node.kind == "path":
                assert len(node.characters) <= 4

    def test_layout_validation(self):
        layout = PathNodeLayout()
        with pytest.raises(ValueError):
            layout.path_node_bits(0)
        with pytest.raises(ValueError):
            layout.path_node_bits(layout.max_path_length + 1)


@settings(max_examples=20, deadline=None)
@given(
    patterns=st.lists(st.binary(min_size=1, max_size=5), min_size=1, max_size=8, unique=True),
    data=st.binary(max_size=200),
)
def test_compressed_variants_agree_with_dfa(patterns, data):
    expected = reference(patterns, data)
    assert sorted(BitmapAhoCorasick.from_patterns(patterns).match(data)) == expected
    assert sorted(PathCompressedAhoCorasick.from_patterns(patterns).match(data)) == expected
