"""Tests for the pcap capture/replay subsystem.

The headline contract (ISSUE 4 acceptance): a capture written by
``repro.capture``, re-read and replayed through any scan front-end, yields
**byte-identical** events/alerts to scanning the same segments in memory —
across container formats, matcher backends and serial vs. worker-process
services.
"""

from __future__ import annotations

import io
import struct

import pytest

from repro.backend import get_backend
from repro.capture import (
    LINKTYPE_ETHERNET,
    LINKTYPE_LINUX_SLL,
    LINKTYPE_RAW,
    CaptureError,
    CaptureRecord,
    FrameEncodeError,
    decode_frame,
    encode_frame,
    load_packets,
    read_capture,
    replay_ids,
    replay_stream,
    write_packets,
    write_pcap,
    write_pcapng,
)
from repro.core import compile_ruleset
from repro.fpga import STRATIX_III
from repro.ids.classifier import HeaderPattern
from repro.ids.pipeline import IDSRule, IntrusionDetectionSystem
from repro.rulesets import generate_snort_like_ruleset
from repro.streaming import StreamScanner
from repro.traffic.generator import TrafficGenerator
from repro.traffic.packet import FiveTuple, Packet
from tests.conftest import assert_equivalent_events, renumbered


@pytest.fixture(scope="module")
def ruleset():
    return generate_snort_like_ruleset(60, seed=11)


@pytest.fixture(scope="module")
def workload(ruleset):
    """Interleaved multi-packet flows, one boundary-split pattern each."""
    generator = TrafficGenerator(ruleset, seed=12)
    flows = generator.flows(8, num_packets=4, split_patterns=1, whole_patterns=1)
    return flows, TrafficGenerator.interleave(flows)


@pytest.fixture(scope="module", params=["pcap", "pcapng"])
def capture_bytes(request, workload):
    _, packets = workload
    buffer = io.BytesIO()
    assert write_packets(buffer, packets, fmt=request.param) == len(packets)
    return buffer.getvalue()


# ----------------------------------------------------------------------
# container round-trips
# ----------------------------------------------------------------------
class TestPcapContainer:
    def test_roundtrip_microsecond(self):
        records = [
            CaptureRecord(data=b"\x01\x02\x03", ts_ns=1_700_000_000_123_456_000),
            CaptureRecord(data=b"", ts_ns=0),
        ]
        buffer = io.BytesIO()
        assert write_pcap(buffer, records, linktype=LINKTYPE_RAW) == 2
        buffer.seek(0)
        capture = read_capture(buffer)
        assert capture.fmt == "pcap" and not capture.nanosecond
        assert capture.linktype == LINKTYPE_RAW
        assert [r.data for r in capture.records] == [b"\x01\x02\x03", b""]
        assert capture.records[0].ts_ns == 1_700_000_000_123_456_000

    def test_roundtrip_nanosecond(self):
        records = [CaptureRecord(data=b"x", ts_ns=7_000_000_123)]
        buffer = io.BytesIO()
        write_pcap(buffer, records, nanosecond=True)
        buffer.seek(0)
        capture = read_capture(buffer)
        assert capture.nanosecond
        assert capture.records[0].ts_ns == 7_000_000_123

    def test_big_endian_pcap_is_read(self):
        # hand-built: BE magic, one 4-byte record
        header = struct.pack(">IHHiIII", 0xA1B2C3D4, 2, 4, 0, 0, 65535, 1)
        record = struct.pack(">IIII", 10, 20, 4, 4) + b"abcd"
        capture = read_capture(io.BytesIO(header + record))
        assert capture.linktype == 1
        assert capture.records[0].data == b"abcd"
        assert capture.records[0].ts_ns == 10 * 1_000_000_000 + 20_000

    def test_truncated_record_raises(self):
        buffer = io.BytesIO()
        write_pcap(buffer, [CaptureRecord(data=b"abcdef")])
        with pytest.raises(CaptureError, match="truncated"):
            read_capture(io.BytesIO(buffer.getvalue()[:-3]))

    def test_garbage_magic_raises(self):
        with pytest.raises(CaptureError, match="not a pcap"):
            read_capture(io.BytesIO(b"GIF89a notacapture"))

    def test_snaplen_truncation_is_visible(self):
        record = CaptureRecord(data=b"abc", orig_len=1500)
        buffer = io.BytesIO()
        write_pcap(buffer, [record])
        buffer.seek(0)
        got = read_capture(buffer).records[0]
        assert got.truncated and got.wire_length == 1500 and got.data == b"abc"


class TestPcapngContainer:
    def test_roundtrip_preserves_nanoseconds(self):
        records = [CaptureRecord(data=b"abcde", ts_ns=1_234_567_891_234_567_891)]
        buffer = io.BytesIO()
        assert write_pcapng(buffer, records, linktype=LINKTYPE_ETHERNET) == 1
        buffer.seek(0)
        capture = read_capture(buffer)
        assert capture.fmt == "pcapng"
        assert capture.linktype == LINKTYPE_ETHERNET
        assert capture.records[0].ts_ns == 1_234_567_891_234_567_891

    def test_unknown_blocks_are_skipped(self):
        buffer = io.BytesIO()
        write_pcapng(buffer, [CaptureRecord(data=b"hi")])
        # splice an Interface Statistics Block (type 5) before the EPB
        data = buffer.getvalue()
        isb = struct.pack("<III", 5, 20, 0) + b"\x00\x00\x00\x00" + struct.pack("<I", 20)
        shb_idb_end = 28 + 32  # SHB (28 bytes) + IDB (32 bytes with tsresol)
        patched = data[:shb_idb_end] + isb + data[shb_idb_end:]
        capture = read_capture(io.BytesIO(patched))
        assert [r.data for r in capture.records] == [b"hi"]

    def test_simple_packet_block(self):
        shb = struct.pack("<IIIHHq", 0x0A0D0D0A, 28, 0x1A2B3C4D, 1, 0, -1) + struct.pack("<I", 28)
        idb = struct.pack("<IIHHI", 1, 20, LINKTYPE_RAW, 0, 0) + struct.pack("<I", 20)
        spb = struct.pack("<III", 3, 20, 3) + b"xyz\x00" + struct.pack("<I", 20)
        capture = read_capture(io.BytesIO(shb + idb + spb))
        assert capture.records[0].data == b"xyz"
        assert not capture.records[0].truncated

    @pytest.mark.parametrize("tsresol, ticks, expected_ns", [
        (b"\x0c", 5_000_000, 5_000),            # picoseconds: 10^-12
        (b"\x89", 512, 1_000_000_000),          # power of two: 2^-9 units
        (b"", 7, 7_000),                        # absent option: microseconds
    ])
    def test_tsresol_conversion_is_exact(self, tsresol, ticks, expected_ns):
        option = (
            struct.pack("<HH", 9, len(tsresol)) + tsresol + b"\x00" * (-len(tsresol) % 4)
            if tsresol else b""
        )
        idb_body = struct.pack("<HHI", LINKTYPE_RAW, 0, 0) + option
        idb = struct.pack("<II", 1, len(idb_body) + 12) + idb_body + struct.pack(
            "<I", len(idb_body) + 12
        )
        shb = struct.pack("<IIIHHq", 0x0A0D0D0A, 28, 0x1A2B3C4D, 1, 0, -1) + struct.pack("<I", 28)
        epb_body = struct.pack("<IIIII", 0, ticks >> 32, ticks & 0xFFFFFFFF, 2, 2) + b"hi\x00\x00"
        epb = struct.pack("<II", 6, len(epb_body) + 12) + epb_body + struct.pack(
            "<I", len(epb_body) + 12
        )
        capture = read_capture(io.BytesIO(shb + idb + epb))
        assert capture.records[0].ts_ns == expected_ns

    def test_packet_before_interface_raises(self):
        shb = struct.pack("<IIIHHq", 0x0A0D0D0A, 28, 0x1A2B3C4D, 1, 0, -1) + struct.pack("<I", 28)
        spb = struct.pack("<III", 3, 20, 3) + b"xyz\x00" + struct.pack("<I", 20)
        with pytest.raises(CaptureError, match="interface"):
            read_capture(io.BytesIO(shb + spb))

    def test_short_block_body_raises_capture_error(self):
        # an IDB whose declared length leaves no room for its fixed fields
        # must fail as CaptureError, never as a bare struct.error
        shb = struct.pack("<IIIHHq", 0x0A0D0D0A, 28, 0x1A2B3C4D, 1, 0, -1) + struct.pack("<I", 28)
        idb = struct.pack("<III", 1, 12, 12)
        with pytest.raises(CaptureError, match="truncated"):
            read_capture(io.BytesIO(shb + idb))


# ----------------------------------------------------------------------
# frame codec
# ----------------------------------------------------------------------
class TestFrameCodec:
    HEADERS = [
        FiveTuple("10.1.2.3", "192.168.0.9", 49152, 80, "tcp"),
        FiveTuple("10.1.2.3", "192.168.0.9", 1024, 53, "udp"),
        FiveTuple("2001:db8::1", "2001:db8::2", 443, 65535, "tcp"),
        FiveTuple("2001:db8::1", "2001:db8::2", 7, 7, "udp"),
    ]

    @pytest.mark.parametrize("linktype", [LINKTYPE_ETHERNET, LINKTYPE_RAW, LINKTYPE_LINUX_SLL])
    def test_encode_decode_roundtrip(self, linktype):
        for header in self.HEADERS:
            frame, reason = decode_frame(
                encode_frame(header, b"payload \x00\xff bytes", linktype), linktype
            )
            assert reason is None
            assert frame.header == header
            assert frame.payload == b"payload \x00\xff bytes"

    def test_empty_payload_roundtrip(self):
        frame, _ = decode_frame(encode_frame(self.HEADERS[0], b""))
        assert frame.payload == b""

    def test_vlan_tagged_ethernet_is_decoded(self):
        raw = encode_frame(self.HEADERS[0], b"tagged")
        tagged = raw[:12] + struct.pack("!HH", 0x8100, 42) + raw[12:]
        frame, reason = decode_frame(tagged)
        assert reason is None and frame.payload == b"tagged"

    def test_arp_frame_skipped_as_network(self):
        arp = b"\xff" * 12 + struct.pack("!H", 0x0806) + b"\x00" * 28
        frame, reason = decode_frame(arp)
        assert frame is None and reason == "network"

    def test_icmp_skipped_as_transport(self):
        frame = bytearray(encode_frame(self.HEADERS[0], b"x"))
        frame[14 + 9] = 1  # ICMP protocol number
        decoded, reason = decode_frame(bytes(frame))
        assert decoded is None and reason == "transport"

    def test_short_frame_skipped_as_truncated(self):
        assert decode_frame(b"\x00" * 10) == (None, "truncated")

    def test_snaplen_cut_ip_header_skipped_as_truncated(self):
        # a snaplen-limited capture cuts inside the IP header: the skip
        # reason must say "truncated", not masquerade as non-IP traffic
        frame = encode_frame(self.HEADERS[0], b"x")
        assert decode_frame(frame[:20]) == (None, "truncated")
        frame6 = encode_frame(self.HEADERS[2], b"x")
        assert decode_frame(frame6[:30]) == (None, "truncated")

    @pytest.mark.parametrize("flags_fragment", [
        0x2010,  # MF + offset 16: non-first fragment
        0x2000,  # MF + offset 0: first fragment — payload is partial
        0x0010,  # offset 16, last fragment
    ])
    def test_ipv4_fragments_skipped(self, flags_fragment):
        frame = bytearray(encode_frame(self.HEADERS[1], b"x"))
        frame[14 + 6:14 + 8] = struct.pack("!H", flags_fragment)
        decoded, reason = decode_frame(bytes(frame))
        assert decoded is None and reason == "fragment"

    def test_unknown_linktype_skipped_as_link(self):
        assert decode_frame(b"\x00" * 64, linktype=147) == (None, "link")

    def test_ip_checksum_is_valid(self):
        def ones_sum(data):
            total = sum(struct.unpack(f"!{len(data) // 2}H", data))
            while total >> 16:
                total = (total & 0xFFFF) + (total >> 16)
            return total

        frame = encode_frame(self.HEADERS[0], b"check me")
        assert ones_sum(frame[14:34]) == 0xFFFF  # IPv4 header verifies
        pseudo = frame[26:34] + struct.pack("!BBH", 0, 6, len(frame) - 34)
        assert ones_sum(pseudo + frame[34:] + b"\x00" * (len(frame) % 2)) == 0xFFFF

    def test_unsupported_protocol_rejected(self):
        with pytest.raises(FrameEncodeError, match="protocol"):
            encode_frame(FiveTuple("1.2.3.4", "5.6.7.8", 1, 2, "icmp"), b"x")

    @pytest.mark.parametrize("header", [HEADERS[0], HEADERS[3]])
    def test_oversized_payload_rejected(self, header):
        # 16-bit IP length fields: a jumbo payload must fail loudly, not
        # crash struct.pack deep inside the encoder
        with pytest.raises(FrameEncodeError, match="does not fit"):
            encode_frame(header, b"x" * 70_000)
        assert decode_frame(encode_frame(header, b"x" * 60_000))[1] is None

    def test_mixed_address_families_rejected(self):
        with pytest.raises(FrameEncodeError, match="mixed"):
            encode_frame(FiveTuple("1.2.3.4", "2001:db8::1", 1, 2, "tcp"), b"x")

    def test_headerless_packet_rejected(self):
        with pytest.raises(FrameEncodeError, match="header"):
            write_packets(io.BytesIO(), [Packet(payload=b"x")])


# ----------------------------------------------------------------------
# replay equivalence — the acceptance criterion
# ----------------------------------------------------------------------
class TestReplayEquivalence:
    BACKENDS = ("dtp", "dense")

    def _program(self, ruleset, backend):
        if backend == "dtp":
            return compile_ruleset(ruleset, STRATIX_III)
        return get_backend(backend).compile(ruleset.patterns)

    def test_loaded_packets_match_originals(self, workload, capture_bytes):
        _, packets = workload
        loaded, stats = load_packets(io.BytesIO(capture_bytes))
        assert stats.decoded == len(packets) and not stats.skipped
        assert stats.payload_bytes == sum(len(p.payload) for p in packets)
        for original, roundtripped in zip(renumbered(packets), loaded):
            assert roundtripped.header == original.header
            assert roundtripped.payload == original.payload
            assert roundtripped.packet_id == original.packet_id

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_stream_scanner_events_identical(self, ruleset, workload, capture_bytes, backend):
        _, packets = workload
        program = self._program(ruleset, backend)
        in_memory = StreamScanner(program).scan_packets(renumbered(packets))
        replayed = replay_stream(io.BytesIO(capture_bytes), StreamScanner(program))
        assert replayed == in_memory
        assert len(replayed) > 0

    @pytest.mark.parametrize("fmt", ["pcap", "pcapng"])
    def test_service_events_identical_across_frontends_and_sources(
        self, ruleset, workload, fmt
    ):
        """{dtp, dense} × {serial, workers=2} × {memory, replay} through the
        shared differential harness, for both container formats."""
        flows, packets = workload
        reference = assert_equivalent_events(
            ruleset,
            packets,
            backends=self.BACKENDS,
            worker_counts=(None, 2),
            sources=("memory", "pcap"),
            num_shards=4,
            capture_fmt=fmt,
        )
        # every deliberately split pattern is found on the replay path too
        sid_of = {index: rule.sid for index, rule in enumerate(ruleset)}
        streamed = {sid_of[event.string_number] for event in reference.events}
        assert {sid for flow in flows for sid in flow.split_sids} <= streamed

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("workers", [None, 2])
    def test_ids_alerts_identical(self, ruleset, workload, capture_bytes, backend, workers):
        _, packets = workload
        rules = [
            IDSRule(sid=rule.sid, header=HeaderPattern(), contents=(rule.pattern,))
            for rule in ruleset
        ]
        with IntrusionDetectionSystem(rules, backend=backend) as in_memory_ids:
            expected = in_memory_ids.scan_flow(renumbered(packets))
        with IntrusionDetectionSystem(rules, backend=backend, workers=workers) as ids:
            alerts = replay_ids(io.BytesIO(capture_bytes), ids)
        assert alerts == expected
        assert len(alerts) >= 8  # one split pattern per flow at minimum

    def test_export_pcap_accepts_flows_or_packets(self, workload, tmp_path):
        flows, packets = workload
        from_flows = tmp_path / "flows.pcap"
        from_packets = tmp_path / "packets.pcap"
        assert TrafficGenerator.export_pcap(from_flows, flows) == len(packets)
        assert TrafficGenerator.export_pcap(from_packets, packets) == len(packets)
        assert from_flows.read_bytes() == from_packets.read_bytes()

    def test_strict_load_raises_on_undecodable_frame(self):
        buffer = io.BytesIO()
        arp = b"\xff" * 12 + struct.pack("!H", 0x0806) + b"\x00" * 28
        write_pcap(buffer, [CaptureRecord(data=arp)])
        buffer.seek(0)
        with pytest.raises(CaptureError, match="network"):
            load_packets(buffer, strict=True)

    def test_lenient_load_counts_skips(self, workload):
        _, packets = workload
        buffer = io.BytesIO()
        arp = b"\xff" * 12 + struct.pack("!H", 0x0806) + b"\x00" * 28
        records = [CaptureRecord(data=encode_frame(p.header, p.payload)) for p in packets[:3]]
        records.insert(1, CaptureRecord(data=arp))
        write_pcap(buffer, records)
        buffer.seek(0)
        loaded, stats = load_packets(buffer)
        assert stats.frames == 4 and stats.decoded == 3
        assert stats.skipped == {"network": 1}
        # ids stay dense over the skipped frame
        assert [p.packet_id for p in loaded] == [0, 1, 2]
