"""Tests for the Snort rule parser."""

import pytest

from repro.rulesets import (
    RuleParseError,
    decode_content_pattern,
    parse_rule,
    parse_rules,
    ruleset_from_specs,
)

RULE = (
    'alert tcp $EXTERNAL_NET any -> $HOME_NET 80 '
    '(msg:"WEB-IIS cmd.exe access"; content:"cmd.exe"; nocase; sid:1002;)'
)
RULE_HEX = (
    'alert tcp any any -> 192.168.0.0/16 139 '
    '(msg:"NETBIOS probe"; content:"|00 01 02|ABC|FF|"; sid:2001;)'
)
RULE_TWO_CONTENTS = (
    'alert udp any any <> any 53 '
    '(msg:"DNS thing"; content:"baddomain"; content:"|01 00|"; sid:3001;)'
)


class TestDecodeContent:
    def test_plain_text(self):
        assert decode_content_pattern("abc") == b"abc"

    def test_hex_block(self):
        assert decode_content_pattern("|41 42 43|") == b"ABC"

    def test_mixed(self):
        assert decode_content_pattern("a|0D 0A|b") == b"a\r\nb"

    def test_multiple_hex_blocks(self):
        assert decode_content_pattern("|00|mid|FF|") == b"\x00mid\xff"

    def test_odd_hex_rejected(self):
        with pytest.raises(RuleParseError):
            decode_content_pattern("|0|")

    def test_empty_rejected(self):
        with pytest.raises(RuleParseError):
            decode_content_pattern("")

    def test_escaped_characters_decode_to_bare_character(self):
        # the escape backslash is never part of the pattern bytes
        assert decode_content_pattern(r"a\;b") == b"a;b"
        assert decode_content_pattern(r"a\"b") == b'a"b'
        assert decode_content_pattern(r"a\\b") == b"a\\b"

    def test_escapes_mix_with_hex_blocks(self):
        assert decode_content_pattern(r"\;|41|\\") == b";A\\"

    def test_dangling_escape_rejected(self):
        with pytest.raises(RuleParseError):
            decode_content_pattern("abc\\")

    def test_non_latin1_character_rejected_as_parse_error(self):
        # must surface as RuleParseError, not a raw UnicodeEncodeError
        with pytest.raises(RuleParseError, match="non-latin-1"):
            decode_content_pattern("caf€")

    def test_undefined_escape_rejected(self):
        # a stray un-doubled backslash must fail loudly, not silently load
        # a mangled pattern into every matcher
        with pytest.raises(RuleParseError, match="undefined escape"):
            decode_content_pattern(r"C:\temp\x")

    def test_unterminated_hex_rejected(self):
        with pytest.raises(RuleParseError):
            decode_content_pattern("|41")

    def test_non_hex_block_rejected(self):
        with pytest.raises(RuleParseError):
            decode_content_pattern("|4G|")


class TestParseRule:
    def test_header_fields(self):
        spec = parse_rule(RULE)
        assert spec.header.action == "alert"
        assert spec.header.protocol == "tcp"
        assert spec.header.src_ip == "$EXTERNAL_NET"
        assert spec.header.direction == "->"
        assert spec.header.dst_port == "80"

    def test_content_and_modifiers(self):
        spec = parse_rule(RULE)
        assert len(spec.contents) == 1
        assert spec.contents[0].pattern == b"cmd.exe"
        assert spec.contents[0].nocase is True
        assert spec.fixed_strings == [b"cmd.exe"]
        assert spec.msg == "WEB-IIS cmd.exe access"
        assert spec.sid == 1002

    def test_hex_content(self):
        spec = parse_rule(RULE_HEX)
        assert spec.contents[0].pattern == b"\x00\x01\x02ABC\xff"

    def test_multiple_contents(self):
        spec = parse_rule(RULE_TWO_CONTENTS)
        assert [c.pattern for c in spec.contents] == [b"baddomain", b"\x01\x00"]

    def test_unknown_options_preserved(self):
        spec = parse_rule(
            'alert tcp any any -> any any (content:"x1"; flow:to_server; depth:10; sid:1;)'
        )
        assert ("flow", "to_server") in spec.unparsed_options
        # depth is real grammar now, not an unknown option
        assert spec.contents[0].depth == 10
        assert spec.unparsed_options == [("flow", "to_server")]

    def test_escaped_content_loads_correct_pattern(self):
        # regression: the backslash used to survive into the pattern bytes,
        # so every matcher was loaded with the wrong string
        spec = parse_rule(
            'alert tcp any any -> any any (content:"a\\;b"; content:"c\\"d"; sid:9;)'
        )
        assert [c.pattern for c in spec.contents] == [b"a;b", b'c"d']

    def test_escaped_semicolon_does_not_split_options(self):
        spec = parse_rule(
            'alert tcp any any -> any any (msg:"one\\; two"; content:"x"; sid:9;)'
        )
        assert spec.msg == "one; two"
        assert len(spec.contents) == 1

    def test_invalid_direction_rejected(self):
        with pytest.raises(RuleParseError, match="direction"):
            parse_rule('alert tcp any any <- any any (content:"x"; sid:4;)')

    def test_valid_directions_accepted(self):
        for direction in ("->", "<>"):
            spec = parse_rule(
                f'alert tcp any any {direction} any any (content:"x"; sid:4;)'
            )
            assert spec.header.direction == direction

    def test_errors(self):
        with pytest.raises(RuleParseError):
            parse_rule("# comment only")
        with pytest.raises(RuleParseError):
            parse_rule("alert tcp any any -> any any content missing parens")
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any (content:"x";)')  # malformed header
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any -> any any (nocase; sid:4;)')
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any -> any any (content:"x"; sid:abc;)')


class TestParseMany:
    def test_skips_comments_and_blanks(self):
        specs = parse_rules(["", "# header", RULE, RULE_HEX])
        assert len(specs) == 2

    def test_parse_error_carries_line_number(self):
        with pytest.raises(RuleParseError, match="line 3"):
            parse_rules(["# comment", RULE,
                         'alert tcp any any <- any any (content:"x"; sid:4;)'])

    def test_ruleset_from_specs_dedupes(self):
        specs = parse_rules([RULE, RULE, RULE_TWO_CONTENTS])
        ruleset = ruleset_from_specs(specs)
        # cmd.exe appears twice but is stored once (lower-cased by nocase)
        assert len(ruleset) == 3
        assert b"cmd.exe" in ruleset
        assert b"baddomain" in ruleset
        assert b"\x01\x00" in ruleset

    def test_sid_collision_keeps_first_and_records_remap(self):
        specs = parse_rules([
            'alert tcp any any -> any 80 (content:"first"; sid:100;)',
            'alert tcp any any -> any 80 (content:"second"; sid:100;)',
            'alert tcp any any -> any 80 (content:"third"; sid:100;)',
        ])
        remap = {}
        ruleset = ruleset_from_specs(specs, sid_remap=remap)
        # the first claimant keeps its sid; the others get fresh sids and the
        # remap says which rule they came from — no phantom sid is invented
        assert ruleset.rule_for(b"first").sid == 100
        assert ruleset.sids == [100, 1, 2]
        assert remap == {1: 100, 2: 100}

    def test_auto_sids_never_squat_on_later_explicit_sids(self):
        specs = parse_rules([
            'alert tcp any any -> any 80 (content:"auto";)',
            'alert tcp any any -> any 80 (content:"explicit"; sid:1;)',
        ])
        ruleset = ruleset_from_specs(specs)
        # the sid-less rule must not steal sid 1 from the rule that claims it
        assert ruleset.rule_for(b"auto").sid == 2
        assert ruleset.rule_for(b"explicit").sid == 1

    def test_multi_content_rule_extra_contents_get_fresh_sids(self):
        remap = {}
        ruleset = ruleset_from_specs(
            parse_rules([RULE_TWO_CONTENTS]), sid_remap=remap
        )
        assert ruleset.rule_for(b"baddomain").sid == 3001
        assert ruleset.rule_for(b"\x01\x00").sid == 1
        assert remap == {1: 3001}

    def test_ruleset_usable_by_matcher(self):
        from repro.core import DTPAutomaton

        ruleset = ruleset_from_specs(parse_rules([RULE, RULE_HEX, RULE_TWO_CONTENTS]))
        dtp = DTPAutomaton.from_ruleset(ruleset)
        matches = dtp.match(b"GET /scripts/CMD.exe".lower() + b" baddomain \x01\x00")
        matched_patterns = {ruleset[pid].pattern for _, pid in matches}
        assert b"cmd.exe" in matched_patterns
        assert b"baddomain" in matched_patterns
