"""Tests for the Snort rule parser."""

import pytest

from repro.rulesets import (
    RuleParseError,
    decode_content_pattern,
    parse_rule,
    parse_rules,
    ruleset_from_specs,
)

RULE = (
    'alert tcp $EXTERNAL_NET any -> $HOME_NET 80 '
    '(msg:"WEB-IIS cmd.exe access"; content:"cmd.exe"; nocase; sid:1002;)'
)
RULE_HEX = (
    'alert tcp any any -> 192.168.0.0/16 139 '
    '(msg:"NETBIOS probe"; content:"|00 01 02|ABC|FF|"; sid:2001;)'
)
RULE_TWO_CONTENTS = (
    'alert udp any any <> any 53 '
    '(msg:"DNS thing"; content:"baddomain"; content:"|01 00|"; sid:3001;)'
)


class TestDecodeContent:
    def test_plain_text(self):
        assert decode_content_pattern("abc") == b"abc"

    def test_hex_block(self):
        assert decode_content_pattern("|41 42 43|") == b"ABC"

    def test_mixed(self):
        assert decode_content_pattern("a|0D 0A|b") == b"a\r\nb"

    def test_multiple_hex_blocks(self):
        assert decode_content_pattern("|00|mid|FF|") == b"\x00mid\xff"

    def test_odd_hex_rejected(self):
        with pytest.raises(RuleParseError):
            decode_content_pattern("|0|")

    def test_empty_rejected(self):
        with pytest.raises(RuleParseError):
            decode_content_pattern("")


class TestParseRule:
    def test_header_fields(self):
        spec = parse_rule(RULE)
        assert spec.header.action == "alert"
        assert spec.header.protocol == "tcp"
        assert spec.header.src_ip == "$EXTERNAL_NET"
        assert spec.header.direction == "->"
        assert spec.header.dst_port == "80"

    def test_content_and_modifiers(self):
        spec = parse_rule(RULE)
        assert len(spec.contents) == 1
        assert spec.contents[0].pattern == b"cmd.exe"
        assert spec.contents[0].nocase is True
        assert spec.fixed_strings == [b"cmd.exe"]
        assert spec.msg == "WEB-IIS cmd.exe access"
        assert spec.sid == 1002

    def test_hex_content(self):
        spec = parse_rule(RULE_HEX)
        assert spec.contents[0].pattern == b"\x00\x01\x02ABC\xff"

    def test_multiple_contents(self):
        spec = parse_rule(RULE_TWO_CONTENTS)
        assert [c.pattern for c in spec.contents] == [b"baddomain", b"\x01\x00"]

    def test_unknown_options_preserved(self):
        spec = parse_rule(
            'alert tcp any any -> any any (content:"x1"; flow:to_server; depth:10; sid:1;)'
        )
        assert ("flow", "to_server") in spec.unparsed_options
        assert ("depth", "10") in spec.unparsed_options

    def test_errors(self):
        with pytest.raises(RuleParseError):
            parse_rule("# comment only")
        with pytest.raises(RuleParseError):
            parse_rule("alert tcp any any -> any any content missing parens")
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any (content:"x";)')  # malformed header
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any -> any any (nocase; sid:4;)')
        with pytest.raises(RuleParseError):
            parse_rule('alert tcp any any -> any any (content:"x"; sid:abc;)')


class TestParseMany:
    def test_skips_comments_and_blanks(self):
        specs = parse_rules(["", "# header", RULE, RULE_HEX])
        assert len(specs) == 2

    def test_ruleset_from_specs_dedupes(self):
        specs = parse_rules([RULE, RULE, RULE_TWO_CONTENTS])
        ruleset = ruleset_from_specs(specs)
        # cmd.exe appears twice but is stored once (lower-cased by nocase)
        assert len(ruleset) == 3
        assert b"cmd.exe" in ruleset
        assert b"baddomain" in ruleset
        assert b"\x01\x00" in ruleset

    def test_ruleset_usable_by_matcher(self):
        from repro.core import DTPAutomaton

        ruleset = ruleset_from_specs(parse_rules([RULE, RULE_HEX, RULE_TWO_CONTENTS]))
        dtp = DTPAutomaton.from_ruleset(ruleset)
        matches = dtp.match(b"GET /scripts/CMD.exe".lower() + b" baddomain \x01\x00")
        matched_patterns = {ruleset[pid].pattern for _, pid in matches}
        assert b"cmd.exe" in matched_patterns
        assert b"baddomain" in matched_patterns
