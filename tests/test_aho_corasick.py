"""Unit tests for the Aho-Corasick NFA (failure function) and DFA (move function)."""


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import AhoCorasickDFA, AhoCorasickNFA, verify_equivalent_matches
from repro.automata.trie import ROOT


def brute_force_matches(patterns, data):
    matches = []
    for pid, pattern in enumerate(patterns):
        start = 0
        while True:
            index = data.find(pattern, start)
            if index < 0:
                break
            matches.append((index + len(pattern), pid))
            start = index + 1
    return sorted(matches)


class TestNFA:
    def test_simple_match(self):
        nfa = AhoCorasickNFA.from_patterns([b"he", b"she", b"his", b"hers"])
        matches = nfa.match(b"ushers")
        assert sorted(matches) == [(4, 1), (4, 0), (6, 3)] or sorted(matches) == sorted(
            [(4, 0), (4, 1), (6, 3)]
        )

    def test_overlapping_matches_reported(self):
        nfa = AhoCorasickNFA.from_patterns([b"aa", b"aaa"])
        matches = nfa.match(b"aaaa")
        assert (2, 0) in matches and (3, 0) in matches and (4, 0) in matches
        assert (3, 1) in matches and (4, 1) in matches

    def test_no_match(self):
        nfa = AhoCorasickNFA.from_patterns([b"abc"])
        assert nfa.match(b"xyz" * 10) == []

    def test_matches_against_brute_force(self, rng):
        patterns = [bytes(rng.choice(b"abc") for _ in range(rng.randint(1, 4))) for _ in range(20)]
        patterns = list(dict.fromkeys(patterns))
        nfa = AhoCorasickNFA.from_patterns(patterns)
        data = bytes(rng.choice(b"abc") for _ in range(3000))
        assert sorted(nfa.match(data)) == brute_force_matches(patterns, data)

    def test_failure_transition_stats_counted(self):
        nfa = AhoCorasickNFA.from_patterns([b"aaaa", b"ab"])
        nfa.match(b"aaab" * 50)
        stats = nfa.last_match_stats
        assert stats is not None
        assert stats.bytes_processed == 200
        assert stats.failure_transitions > 0
        # with fail pointers, more than one state visit per byte is possible
        assert stats.visits_per_byte > 1.0

    def test_memory_accounting_positive(self):
        nfa = AhoCorasickNFA.from_patterns([b"abc", b"abd"])
        assert nfa.stored_pointer_count() > 0
        assert nfa.memory_bytes() == nfa.stored_pointer_count() * 4


class TestDFA:
    def test_matches_equal_nfa(self, rng):
        patterns = [bytes(rng.choice(b"abcd") for _ in range(rng.randint(1, 5))) for _ in range(30)]
        patterns = list(dict.fromkeys(patterns))
        nfa = AhoCorasickNFA.from_patterns(patterns)
        dfa = AhoCorasickDFA.from_patterns(patterns)
        data = bytes(rng.choice(b"abcd") for _ in range(4000))
        equal, differences = verify_equivalent_matches(nfa.match(data), dfa.match(data))
        assert equal, differences

    def test_one_transition_per_byte(self):
        dfa = AhoCorasickDFA.from_patterns([b"he", b"she"])
        states = list(dfa.iter_states(b"ushers"))
        assert len(states) == 6

    def test_root_row_defaults_to_root(self):
        dfa = AhoCorasickDFA.from_patterns([b"he"])
        assert dfa.step(ROOT, ord("x")) == ROOT
        assert dfa.step(ROOT, ord("h")) != ROOT

    def test_depth_and_labels(self, example_dfa):
        assert example_dfa.num_states == 10
        assert int(example_dfa.depth.max()) == 4
        # every non-root state's label matches the final byte of its string
        trie = example_dfa.trie
        for state in range(1, example_dfa.num_states):
            assert trie.string_of(state)[-1] == example_dfa.label[state]

    def test_paper_example_transition_counts(self, example_dfa):
        # Figure 1 example: 26 transitions to non-root states exist in the
        # exact full DFA (the paper's figure reports 25; see EXPERIMENTS.md).
        assert example_dfa.stored_pointer_count() == 26
        assert example_dfa.average_pointers_per_state() == pytest.approx(2.6)

    def test_unique_starting_bytes(self, example_dfa):
        assert example_dfa.unique_starting_bytes() == 2  # 'h' and 's'

    def test_longest_suffix_invariant(self, rng):
        patterns = [b"abab", b"bab", b"ba"]
        dfa = AhoCorasickDFA.from_patterns(patterns)
        trie = dfa.trie
        data = bytes(rng.choice(b"ab") for _ in range(500))
        state = ROOT
        history = b""
        for byte in data:
            history += bytes([byte])
            state = dfa.step(state, byte)
            suffix = trie.string_of(state)
            assert history.endswith(suffix)
            # no longer suffix of the history is a trie prefix
            for longer in range(len(suffix) + 1, min(len(history), 6) + 1):
                assert trie.find_node(history[-longer:]) is None

    def test_full_table_memory_larger_than_sparse(self, example_dfa):
        assert example_dfa.full_table_memory_bytes() > example_dfa.memory_bytes()

    def test_pointer_counts_per_state_sum(self, example_dfa):
        per_state = example_dfa.pointer_counts_per_state()
        assert int(per_state.sum()) == example_dfa.stored_pointer_count()


@settings(max_examples=30, deadline=None)
@given(
    patterns=st.lists(st.binary(min_size=1, max_size=5), min_size=1, max_size=12, unique=True),
    data=st.binary(max_size=300),
)
def test_dfa_matches_brute_force_property(patterns, data):
    dfa = AhoCorasickDFA.from_patterns(patterns)
    assert sorted(dfa.match(data)) == brute_force_matches(patterns, data)


@settings(max_examples=20, deadline=None)
@given(
    patterns=st.lists(st.binary(min_size=1, max_size=4), min_size=1, max_size=8, unique=True),
    data=st.binary(max_size=200),
)
def test_nfa_and_dfa_agree_property(patterns, data):
    nfa = AhoCorasickNFA.from_patterns(patterns)
    dfa = AhoCorasickDFA.from_patterns(patterns)
    assert sorted(nfa.match(data)) == sorted(dfa.match(data))
