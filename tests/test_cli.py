"""Tests for the command line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("generate-ruleset", "compile", "scan", "scan-stream",
                    "table1", "table2", "table3", "fig6", "fig7", "fig8"):
        assert command in text


def test_generate_ruleset_to_file(tmp_path, capsys):
    output = tmp_path / "rules.txt"
    assert main(["generate-ruleset", "--size", "40", "--seed", "3", "--output", str(output)]) == 0
    content = output.read_text()
    assert content.count("content:") == 40
    assert "wrote 40 rules" in capsys.readouterr().out


def test_generate_ruleset_to_stdout(capsys):
    assert main(["generate-ruleset", "--size", "10", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert out.count("sid:") == 10


def test_compile_command(capsys):
    assert main(["compile", "--size", "60", "--seed", "2", "--device", "cyclone3"]) == 0
    out = capsys.readouterr().out
    assert "Cyclone III" in out
    assert "blocks per group" in out


def test_scan_command(capsys):
    assert main(["scan", "--size", "50", "--seed", "2", "--packets", "12", "--payload", "120"]) == 0
    out = capsys.readouterr().out
    assert "bytes per engine cycle" in out
    assert "nominal throughput" in out


def test_scan_stream_command(capsys):
    assert main(["scan-stream", "--size", "40", "--seed", "5", "--flows", "6",
                 "--packets-per-flow", "3", "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "6/6 (streaming)" in out
    assert "0/6 (per-packet scan)" in out
    assert "shard occupancy" in out


def test_scan_stream_three_segment_split(capsys):
    assert main(["scan-stream", "--size", "40", "--seed", "6", "--flows", "4",
                 "--packets-per-flow", "4", "--split-segments", "3"]) == 0
    out = capsys.readouterr().out
    assert "4/4 (streaming)" in out


def test_scan_software_backend(capsys):
    assert main(["scan", "--size", "50", "--seed", "2", "--packets", "12",
                 "--payload", "120", "--backend", "dense"]) == 0
    out = capsys.readouterr().out
    assert "backend                : dense" in out
    assert "software throughput" in out
    # same workload, same match count as the cycle-level dtp scan
    assert "match events           : 10" in out


def _stream_match_report(capsys, backend):
    assert main(["scan-stream", "--size", "40", "--seed", "5", "--flows", "6",
                 "--packets-per-flow", "3", "--shards", "2",
                 "--backend", backend, "--print-events"]) == 0
    out = capsys.readouterr().out
    assert f"backend                   : {backend}" in out
    return out[out.index("match report:"):]


def test_scan_stream_backends_report_identically(capsys):
    reports = {
        backend: _stream_match_report(capsys, backend)
        for backend in ("dtp", "dense", "ac", "wu-manber")
    }
    assert len(set(reports.values())) == 1, "match reports must be byte-identical"
    assert reports["dtp"].count("packet=") == 6


def test_scan_stream_workers_report_identical(capsys):
    serial = _stream_match_report(capsys, "dtp")
    assert main(["scan-stream", "--size", "40", "--seed", "5", "--flows", "6",
                 "--packets-per-flow", "3", "--shards", "2", "--workers", "2",
                 "--print-events"]) == 0
    out = capsys.readouterr().out
    assert "worker processes          : 2" in out
    assert out[out.index("match report:"):] == serial[serial.index("match report:"):]


def test_ids_workers_command(capsys):
    assert main(["ids", "--size", "40", "--seed", "5", "--flows", "6",
                 "--workers", "2", "--print-alerts"]) == 0
    out = capsys.readouterr().out
    assert "split-pattern alerts : 6/6" in out
    assert out.count("packet=") == 6


def test_ids_command(capsys):
    assert main(["ids", "--size", "40", "--seed", "5", "--flows", "6",
                 "--backend", "dense", "--print-alerts"]) == 0
    out = capsys.readouterr().out
    assert "split-pattern alerts : 6/6" in out
    assert out.count("packet=") == 6


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Cyclone III" in out and "Stratix III" in out
    assert "404" in out and "822" in out


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])
