"""Tests for the command line interface."""

import json
import pathlib

import pytest

from repro.api import ConfigError, repro_version
from repro.cli import build_parser, main
from repro.rulesets import RuleParseError

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def test_parser_has_all_subcommands():
    parser = build_parser()
    text = parser.format_help()
    for command in ("generate-ruleset", "compile", "scan", "scan-stream",
                    "run", "lint", "verify",
                    "table1", "table2", "table3", "fig6", "fig7", "fig8"):
        assert command in text
    # the epilog records the producing version next to the config-file story
    assert f"version {repro_version()}" in text


def test_version_flag_prints_package_version(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--version"])
    assert excinfo.value.code == 0
    assert capsys.readouterr().out.strip() == f"repro-dpi {repro_version()}"


def test_generate_ruleset_to_file(tmp_path, capsys):
    output = tmp_path / "rules.txt"
    assert main(["generate-ruleset", "--size", "40", "--seed", "3", "--output", str(output)]) == 0
    content = output.read_text()
    assert content.count("content:") == 40
    assert "wrote 40 rules" in capsys.readouterr().out


def test_generate_ruleset_to_stdout(capsys):
    assert main(["generate-ruleset", "--size", "10", "--seed", "3"]) == 0
    out = capsys.readouterr().out
    assert out.count("sid:") == 10


def test_compile_command(capsys):
    assert main(["compile", "--size", "60", "--seed", "2", "--device", "cyclone3"]) == 0
    out = capsys.readouterr().out
    assert "Cyclone III" in out
    assert "blocks per group" in out


def test_scan_command(capsys):
    assert main(["scan", "--size", "50", "--seed", "2", "--packets", "12", "--payload", "120"]) == 0
    out = capsys.readouterr().out
    assert "bytes per engine cycle" in out
    assert "nominal throughput" in out


def test_scan_stream_command(capsys):
    assert main(["scan-stream", "--size", "40", "--seed", "5", "--flows", "6",
                 "--packets-per-flow", "3", "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "6/6 (streaming)" in out
    assert "0/6 (per-packet scan)" in out
    assert "shard occupancy" in out


def test_scan_stream_three_segment_split(capsys):
    assert main(["scan-stream", "--size", "40", "--seed", "6", "--flows", "4",
                 "--packets-per-flow", "4", "--split-segments", "3"]) == 0
    out = capsys.readouterr().out
    assert "4/4 (streaming)" in out


def test_scan_software_backend(capsys):
    assert main(["scan", "--size", "50", "--seed", "2", "--packets", "12",
                 "--payload", "120", "--backend", "dense"]) == 0
    out = capsys.readouterr().out
    assert "backend                : dense" in out
    assert "software throughput" in out
    # same workload, same match count as the cycle-level dtp scan
    assert "match events           : 10" in out


def _stream_match_report(capsys, backend):
    assert main(["scan-stream", "--size", "40", "--seed", "5", "--flows", "6",
                 "--packets-per-flow", "3", "--shards", "2",
                 "--backend", backend, "--print-events"]) == 0
    out = capsys.readouterr().out
    assert f"backend                   : {backend}" in out
    return out[out.index("match report:"):]


def test_scan_stream_backends_report_identically(capsys):
    reports = {
        backend: _stream_match_report(capsys, backend)
        for backend in ("dtp", "dense", "ac", "wu-manber")
    }
    assert len(set(reports.values())) == 1, "match reports must be byte-identical"
    assert reports["dtp"].count("packet=") == 6


def test_scan_stream_workers_report_identical(capsys):
    serial = _stream_match_report(capsys, "dtp")
    assert main(["scan-stream", "--size", "40", "--seed", "5", "--flows", "6",
                 "--packets-per-flow", "3", "--shards", "2", "--workers", "2",
                 "--print-events"]) == 0
    out = capsys.readouterr().out
    assert "worker processes          : 2" in out
    assert out[out.index("match report:"):] == serial[serial.index("match report:"):]


def test_ids_workers_command(capsys):
    assert main(["ids", "--size", "40", "--seed", "5", "--flows", "6",
                 "--workers", "2", "--print-alerts"]) == 0
    out = capsys.readouterr().out
    assert "split-pattern alerts : 6/6" in out
    assert out.count("packet=") == 6


def test_ids_command(capsys):
    assert main(["ids", "--size", "40", "--seed", "5", "--flows", "6",
                 "--backend", "dense", "--print-alerts"]) == 0
    out = capsys.readouterr().out
    assert "split-pattern alerts : 6/6" in out
    assert out.count("packet=") == 6


@pytest.fixture
def workload_pcap(tmp_path, capsys):
    """The scan-stream workload for --size 40 --seed 5, exported as a pcap."""
    path = tmp_path / "workload.pcap"
    assert main(["scan-stream", "--size", "40", "--seed", "5", "--flows", "6",
                 "--packets-per-flow", "3", "--shards", "2",
                 "--export-pcap", str(path)]) == 0
    out = capsys.readouterr().out
    assert f"wrote 18 frames to {path}" in out
    return path


def _pcap_match_report(capsys, path, *extra):
    assert main(["scan-pcap", str(path), "--size", "40", "--seed", "5",
                 "--shards", "2", "--print-events", *extra]) == 0
    out = capsys.readouterr().out
    return out, out[out.index("match report:"):]


def test_scan_pcap_command(capsys, workload_pcap):
    out, report = _pcap_match_report(capsys, workload_pcap)
    assert "decoded 18 packets / 6 flows" in out
    assert "skipped frames            : 0" in out
    assert "cross-segment matches     : 6" in out
    assert report.count("packet=") == 6


def test_scan_pcap_backends_and_workers_report_identically(capsys, workload_pcap):
    reports = {
        _pcap_match_report(capsys, workload_pcap, *extra)[1]
        for extra in ((), ("--backend", "dense"), ("--workers", "2"))
    }
    assert len(reports) == 1, "replayed match reports must be byte-identical"


def test_scan_pcap_with_rules_file(tmp_path, capsys, workload_pcap):
    rules = tmp_path / "local.rules"
    rules.write_text(
        'alert tcp any any -> any any (msg:"chatter"; content:"GET /index.html"; sid:10;)\n'
    )
    assert main(["scan-pcap", str(workload_pcap), "--rules", str(rules),
                 "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "rules loaded              : 1" in out
    assert "match events              : " in out


def test_scan_pcap_rejects_garbage_file(tmp_path):
    bogus = tmp_path / "bogus.pcap"
    bogus.write_bytes(b"this is not a capture")
    with pytest.raises(Exception, match="pcap"):
        main(["scan-pcap", str(bogus), "--size", "40"])


def test_export_pcapng_container_follows_extension(tmp_path, capsys):
    path = tmp_path / "workload.pcapng"
    assert main(["scan-stream", "--size", "40", "--seed", "5", "--flows", "6",
                 "--packets-per-flow", "3", "--shards", "2",
                 "--export-pcap", str(path)]) == 0
    capsys.readouterr()
    assert main(["scan-pcap", str(path), "--size", "40", "--seed", "5",
                 "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "(pcapng, linktype 1, 18 frames)" in out


def test_ids_rules_file_over_pcap(tmp_path, capsys, workload_pcap):
    rules = tmp_path / "local.rules"
    # the generator's HTTP background chatter makes this content real traffic
    rules.write_text(
        'alert tcp any any -> any any (msg:"chatter"; content:"GET /index.html"; sid:10;)\n'
    )
    assert main(["ids", "--pcap", str(workload_pcap), "--rules", str(rules)]) == 0
    out = capsys.readouterr().out
    assert "rules loaded         : 1" in out
    assert "alerts raised        : 0" not in out


def test_ids_contentless_rules_file_errors_cleanly(tmp_path, capsys, workload_pcap):
    rules = tmp_path / "local.rules"
    rules.write_text('alert tcp any any -> any any (msg:"no content"; sid:9;)\n')
    assert main(["ids", "--pcap", str(workload_pcap), "--rules", str(rules)]) == 1
    assert "no content patterns" in capsys.readouterr().err


def test_ids_rules_without_pcap_errors(tmp_path, capsys):
    rules = tmp_path / "local.rules"
    rules.write_text('alert tcp any any -> any any (content:"x"; sid:1;)\n')
    assert main(["ids", "--rules", str(rules)]) == 1
    assert "--rules requires --pcap" in capsys.readouterr().err


def test_ids_pcap_command(capsys, workload_pcap):
    assert main(["ids", "--size", "40", "--seed", "5",
                 "--pcap", str(workload_pcap), "--print-alerts"]) == 0
    out = capsys.readouterr().out
    # the same 6 split-pattern alerts the in-memory ids run raises
    assert "alerts raised        : 6" in out
    assert out.count("packet=") == 6


def test_sid_remap_counts_follow_the_engine_built(tmp_path, capsys, workload_pcap):
    """ids counts per-rule reassignments, scan-pcap per-content (PR-4 idiom).

    The two allocator passes must never share one remap record: the IDS
    assigns one sid per *rule*, the ruleset one per unique *content*.
    """
    rules = tmp_path / "multi.rules"
    rules.write_text(
        'alert tcp any any -> any any (msg:"two"; content:"GET /index.html"; '
        'content:"Host: example.com"; sid:7;)\n'
        'alert tcp any any -> any any (msg:"collision"; content:"Accept: */*"; sid:7;)\n'
    )
    assert main(["ids", "--pcap", str(workload_pcap), "--rules", str(rules)]) == 0
    out = capsys.readouterr().out
    assert "rules loaded         : 2 (1 reassigned sids)" in out
    assert main(["scan-pcap", str(workload_pcap), "--rules", str(rules),
                 "--shards", "2"]) == 0
    out = capsys.readouterr().out
    assert "rules loaded              : 3 (2 reassigned sids)" in out


def test_scan_pcap_contentless_rules_errors_cleanly(tmp_path, capsys, workload_pcap):
    rules = tmp_path / "local.rules"
    rules.write_text('alert tcp any any -> any any (msg:"no content"; sid:9;)\n')
    assert main(["scan-pcap", str(workload_pcap), "--rules", str(rules)]) == 1
    assert "no content patterns" in capsys.readouterr().err


def test_run_example_pipeline_config(tmp_path, capsys):
    """The committed example config executes end to end (CI runs it too)."""
    for name in ("pipeline_ids.json", "pipeline.rules"):
        (tmp_path / name).write_text((EXAMPLES / name).read_text(encoding="utf-8"),
                                     encoding="utf-8")
    assert main(["run", str(tmp_path / "pipeline_ids.json")]) == 0
    out = capsys.readouterr().out
    assert "mode                  : ids" in out
    assert "alerts raised         : 0" not in out  # the example must alert
    sink = tmp_path / "pipeline_alerts.ndjson"
    assert sink.exists()
    records = [json.loads(line) for line in sink.read_text().splitlines()]
    assert records and all({"packet", "sid", "msg", "action"} <= set(r) for r in records)


# ----------------------------------------------------------------------
# error idiom, locked per subcommand: bad input *values* raise their raw
# ValueError-family tracebacks; empty-result / flag-combination errors
# print to stderr and exit 1 (covered by the *_errors_cleanly tests above).
# ----------------------------------------------------------------------
@pytest.mark.parametrize(
    "argv, exception",
    [
        pytest.param(["scan", "--size", "20", "--seed", "2", "--packets", "-1"],
                     ValueError, id="scan-negative-packets"),
        pytest.param(["scan", "--size", "20", "--seed", "2", "--packets", "2",
                      "--payload", "0"], ValueError, id="scan-zero-payload"),
        pytest.param(["scan", "--size", "20", "--seed", "2", "--packets", "2",
                      "--attack-rate", "1.5"], ValueError, id="scan-bad-attack-rate"),
        pytest.param(["scan-stream", "--size", "20", "--seed", "2", "--flows", "2",
                      "--shards", "0"], ValueError, id="scan-stream-zero-shards"),
        pytest.param(["scan-stream", "--size", "20", "--seed", "2", "--flows", "2",
                      "--workers", "0"], ValueError, id="scan-stream-zero-workers"),
        pytest.param(["scan-stream", "--size", "20", "--seed", "2", "--flows", "2",
                      "--flow-capacity", "0"], ValueError,
                     id="scan-stream-zero-flow-capacity"),
        pytest.param(["scan-stream", "--size", "20", "--seed", "2", "--flows", "2",
                      "--segment-bytes", "0"], ValueError,
                     id="scan-stream-zero-segment-bytes"),
        pytest.param(["ids", "--size", "20", "--seed", "2", "--flows", "2",
                      "--workers", "0"], ValueError, id="ids-zero-workers"),
        # flow/packet counts, locked by the IDM106 idiom lint: every count
        # flag a handler reads must be checked before any work happens
        pytest.param(["scan", "--size", "20", "--seed", "2", "--packets", "0"],
                     ValueError, id="scan-zero-packets"),
        pytest.param(["scan-stream", "--size", "20", "--seed", "2",
                      "--flows", "0"], ValueError, id="scan-stream-zero-flows"),
        pytest.param(["scan-stream", "--size", "20", "--seed", "2", "--flows", "2",
                      "--packets-per-flow", "0"], ValueError,
                     id="scan-stream-zero-packets-per-flow"),
        pytest.param(["ids", "--size", "20", "--seed", "2", "--flows", "0"],
                     ValueError, id="ids-zero-flows"),
        pytest.param(["ids", "--size", "20", "--seed", "2", "--flows", "2",
                      "--packets-per-flow", "0"], ValueError,
                     id="ids-zero-packets-per-flow"),
        # count flags are range-checked before the capture is even opened,
        # so a placeholder path exercises the validation alone
        pytest.param(["scan-pcap", "unused.pcap", "--workers", "0"],
                     ValueError, id="scan-pcap-zero-workers"),
        pytest.param(["scan-pcap", "unused.pcap", "--shards", "0"],
                     ValueError, id="scan-pcap-zero-shards"),
        pytest.param(["scan-pcap", "unused.pcap", "--flow-capacity", "0"],
                     ValueError, id="scan-pcap-zero-flow-capacity"),
        pytest.param(["serve", "--pcap-tail", "unused.pcap", "--workers", "0"],
                     ValueError, id="serve-zero-workers"),
        pytest.param(["serve", "--pcap-tail", "unused.pcap", "--shards", "-1"],
                     ValueError, id="serve-negative-shards"),
        pytest.param(["serve", "--pcap-tail", "unused.pcap", "--max-packets", "0"],
                     ValueError, id="serve-zero-max-packets"),
        pytest.param(["serve", "--pcap-tail", "unused.pcap", "--batch-packets", "0"],
                     ValueError, id="serve-zero-batch-packets"),
        pytest.param(["serve", "--tcp", "127.0.0.1:notaport"],
                     ValueError, id="serve-non-numeric-port"),
        pytest.param(["serve", "--udp", ":70000"],
                     ValueError, id="serve-port-out-of-range"),
    ],
)
def test_bad_input_values_raise_raw_tracebacks(argv, exception):
    with pytest.raises(exception):
        main(argv)


def test_serve_pcap_tail_matches_scan_pcap(capsys, workload_pcap):
    """The ISSUE's acceptance path: serving a replayed live source emits a
    match report byte-identical to the offline scan of the same capture."""
    _, offline_report = _pcap_match_report(capsys, workload_pcap)
    assert main(["serve", "--pcap-tail", str(workload_pcap), "--size", "40",
                 "--seed", "5", "--shards", "2", "--workers", "2",
                 "--print-events"]) == 0
    out = capsys.readouterr().out
    assert "stop reason               : source_exhausted" in out
    assert "served 18 packets" in out
    assert out[out.index("match report:"):] == offline_report


def test_serve_flag_combinations_error_cleanly(capsys, workload_pcap):
    assert main(["serve"]) == 1
    assert "exactly one live source" in capsys.readouterr().err
    assert main(["serve", "--tcp", ":0", "--udp", ":0"]) == 1
    assert "exactly one live source" in capsys.readouterr().err
    assert main(["serve", "--tcp", ":0", "--follow"]) == 1
    assert "--follow only applies to --pcap-tail" in capsys.readouterr().err


def test_scan_pcap_unparseable_rules_raise(tmp_path, workload_pcap):
    rules = tmp_path / "bad.rules"
    rules.write_text('alert tcp any any -> any any (content:"C:\\temp"; sid:1;)\n')
    with pytest.raises(RuleParseError, match="undefined escape"):
        main(["scan-pcap", str(workload_pcap), "--rules", str(rules)])


def test_run_missing_config_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        main(["run", str(tmp_path / "nope.json")])


def test_run_malformed_config_raises_config_error(tmp_path):
    config = tmp_path / "pipe.json"
    config.write_text(json.dumps({
        "source": {"kind": "generator", "count": 2},
        "bogus_section": True,
    }))
    with pytest.raises(ConfigError, match="bogus_section"):
        main(["run", str(config)])
    config.write_text(json.dumps({
        "source": {"kind": "generator", "count": 2},
        "engine": {"backend": "not-a-backend"},
    }))
    with pytest.raises(ConfigError, match="not-a-backend"):
        main(["run", str(config)])


def test_table1_command(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "Cyclone III" in out and "Stratix III" in out
    assert "404" in out and "822" in out


def test_missing_command_errors():
    with pytest.raises(SystemExit):
        main([])
