"""Unit tests for the keyword trie."""

import pytest

from repro.automata.trie import ROOT, Trie


def test_empty_trie_has_only_root():
    trie = Trie()
    assert trie.num_states == 1
    assert trie.num_patterns == 0
    assert trie.depth[ROOT] == 0
    assert trie.label[ROOT] == -1


def test_add_single_pattern_creates_chain():
    trie = Trie()
    pid = trie.add_pattern(b"abc")
    assert pid == 0
    assert trie.num_states == 4
    node = trie.find_node(b"abc")
    assert node is not None
    assert trie.depth[node] == 3
    assert trie.outputs[node] == [0]
    assert trie.string_of(node) == b"abc"


def test_shared_prefix_shares_states():
    trie = Trie.from_patterns([b"abcd", b"abxy"])
    # root + a + b + (c + d) + (x + y)
    assert trie.num_states == 1 + 2 + 2 + 2
    assert trie.find_node(b"ab") is not None


def test_duplicate_patterns_share_terminal_state():
    trie = Trie()
    first = trie.add_pattern(b"dup")
    second = trie.add_pattern(b"dup")
    assert first != second
    node = trie.find_node(b"dup")
    assert trie.outputs[node] == [first, second]


def test_empty_pattern_rejected():
    trie = Trie()
    with pytest.raises(ValueError):
        trie.add_pattern(b"")


def test_non_bytes_pattern_rejected():
    trie = Trie()
    with pytest.raises(TypeError):
        trie.add_pattern("text")  # type: ignore[arg-type]


def test_goto_and_find_node():
    trie = Trie.from_patterns([b"hello"])
    assert trie.goto(ROOT, ord("h")) is not None
    assert trie.goto(ROOT, ord("x")) is None
    assert trie.find_node(b"hel") is not None
    assert trie.find_node(b"help") is None


def test_bfs_order_is_by_depth():
    trie = Trie.from_patterns([b"he", b"she", b"his", b"hers"])
    order = list(trie.iter_bfs())
    assert order[0] == ROOT
    depths = [trie.depth[s] for s in order]
    assert depths == sorted(depths)
    assert len(order) == trie.num_states


def test_states_at_depth_and_stats():
    trie = Trie.from_patterns([b"he", b"she", b"his", b"hers"])
    assert trie.num_states == 10  # root + 9 (classic Aho-Corasick example)
    assert len(trie.states_at_depth(1)) == 2  # 'h' and 's'
    stats = trie.stats()
    assert stats.num_states == 10
    assert stats.num_patterns == 4
    assert stats.total_pattern_bytes == len(b"heshehishers")
    assert stats.max_depth == 4
    assert stats.states_per_depth[0] == 1


def test_parent_and_label_relations():
    trie = Trie.from_patterns([b"cat", b"car"])
    node = trie.find_node(b"cat")
    parent = trie.parent[node]
    assert trie.string_of(parent) == b"ca"
    assert trie.label[node] == ord("t")
