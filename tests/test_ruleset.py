"""Tests for the RuleSet container."""

import pytest

from repro.rulesets import PatternRule, RuleSet


def test_add_and_lookup():
    ruleset = RuleSet(name="t")
    rule = ruleset.add_pattern(b"abc", msg="demo")
    assert rule.sid == 1
    assert b"abc" in ruleset
    assert ruleset.rule_for(b"abc").msg == "demo"
    assert len(ruleset) == 1


def test_duplicate_pattern_rejected():
    ruleset = RuleSet.from_patterns([b"one"])
    with pytest.raises(ValueError):
        ruleset.add(PatternRule(pattern=b"one", sid=99))


def test_empty_pattern_rejected():
    with pytest.raises(ValueError):
        PatternRule(pattern=b"", sid=1)


def test_from_patterns_assigns_sequential_sids():
    ruleset = RuleSet.from_patterns([b"a1", b"b2", b"c3"])
    assert ruleset.sids == [1, 2, 3]
    assert ruleset.patterns == [b"a1", b"b2", b"c3"]


def test_total_characters_and_starting_bytes():
    ruleset = RuleSet.from_patterns([b"abc", b"abcd", b"xyz"])
    assert ruleset.total_characters == 10
    assert ruleset.unique_starting_bytes == 2


def test_length_histograms():
    ruleset = RuleSet.from_patterns([b"ab", b"cd", b"efghi", bytes(60)])
    histogram = ruleset.length_histogram()
    assert histogram == {2: 2, 5: 1, 60: 1}
    buckets = ruleset.bucketed_histogram()
    assert buckets["1-4"] == 2
    assert buckets["5-9"] == 1
    assert buckets["50+"] == 1
    assert sum(buckets.values()) == len(ruleset)


def test_round_robin_split():
    ruleset = RuleSet.from_patterns([b"r%d" % i for i in range(10)])
    groups = ruleset.split(3)
    assert sum(len(g) for g in groups) == 10
    assert {p for g in groups for p in g.patterns} == set(ruleset.patterns)
    with pytest.raises(ValueError):
        ruleset.split(0)


def test_summary_fields():
    ruleset = RuleSet.from_patterns([b"ab", b"cdef"])
    summary = ruleset.summary()
    assert summary["rules"] == 2
    assert summary["characters"] == 6
    assert summary["min_length"] == 2
    assert summary["max_length"] == 4
    assert summary["mean_length"] == 3.0


def test_empty_summary():
    assert RuleSet(name="e").summary()["rules"] == 0


def test_indexing_and_iteration():
    ruleset = RuleSet.from_patterns([b"aa", b"bb"])
    assert ruleset[0].pattern == b"aa"
    assert [r.pattern for r in ruleset] == [b"aa", b"bb"]
