"""Tests for packet and traffic generation."""

import pytest

from repro.traffic import FiveTuple, Packet, TrafficGenerator, TrafficProfile


def test_five_tuple_validation():
    FiveTuple("1.2.3.4", "5.6.7.8", 80, 443, "tcp")
    with pytest.raises(ValueError):
        FiveTuple("1.2.3.4", "5.6.7.8", -1, 443, "tcp")
    with pytest.raises(ValueError):
        FiveTuple("1.2.3.4", "5.6.7.8", 80, 70000, "tcp")


def test_packet_length():
    packet = Packet(payload=b"abcd", packet_id=3)
    assert len(packet) == 4
    assert packet.length == 4


def test_profile_validation():
    with pytest.raises(ValueError):
        TrafficProfile(min_payload_bytes=0)
    with pytest.raises(ValueError):
        TrafficProfile(min_payload_bytes=100, max_payload_bytes=50)
    with pytest.raises(ValueError):
        TrafficProfile(attack_probability=1.5)
    with pytest.raises(ValueError):
        TrafficProfile(max_injected=0)


def test_deterministic_stream(small_ruleset):
    first = TrafficGenerator(small_ruleset, seed=7).packets(20)
    second = TrafficGenerator(small_ruleset, seed=7).packets(20)
    assert [p.payload for p in first] == [p.payload for p in second]


def test_packet_ids_increase(small_ruleset):
    generator = TrafficGenerator(small_ruleset, seed=1)
    packets = generator.packets(10)
    assert [p.packet_id for p in packets] == list(range(10))


def test_payload_sizes_within_bounds(small_ruleset):
    profile = TrafficProfile(mean_payload_bytes=100, min_payload_bytes=60, max_payload_bytes=200)
    generator = TrafficGenerator(small_ruleset, profile, seed=2)
    for packet in generator.packets(100):
        assert 60 <= len(packet.payload) <= 200 + 200  # appended injections may extend


def test_injected_patterns_actually_present(small_ruleset):
    profile = TrafficProfile(attack_probability=1.0, max_injected=3)
    generator = TrafficGenerator(small_ruleset, profile, seed=3)
    for packet in generator.packets(50):
        assert packet.injected_sids
        for sid in packet.injected_sids:
            pattern = next(r.pattern for r in small_ruleset if r.sid == sid)
            assert pattern in packet.payload


def test_attack_probability_zero_injects_nothing(small_ruleset):
    profile = TrafficProfile(attack_probability=0.0)
    generator = TrafficGenerator(small_ruleset, profile, seed=4)
    assert all(not p.injected_sids for p in generator.packets(30))


def test_generator_without_ruleset():
    generator = TrafficGenerator(None, TrafficProfile(attack_probability=1.0), seed=5)
    packets = generator.packets(5)
    assert all(not p.injected_sids for p in packets)


def test_headers_are_plausible(small_ruleset):
    generator = TrafficGenerator(small_ruleset, seed=6)
    packet = generator.packet()
    assert packet.header is not None
    assert packet.header.protocol in ("tcp", "udp")
    assert 0 <= packet.header.dst_port <= 65535


def test_stream_iterator(small_ruleset):
    generator = TrafficGenerator(small_ruleset, seed=8)
    stream = generator.stream()
    packets = [next(stream) for _ in range(5)]
    assert len(packets) == 5
    assert packets[-1].packet_id == 4


def test_negative_count_rejected(small_ruleset):
    with pytest.raises(ValueError):
        TrafficGenerator(small_ruleset).packets(-1)
