"""Tests for the cycle-level hardware model: memories, engines, blocks, scheduler."""

import pytest

from repro.automata import AhoCorasickDFA
from repro.hardware import (
    ENGINES_PER_BLOCK,
    ENGINES_PER_PORT,
    DualPortMemory,
    HardwareAccelerator,
    PortOversubscribedError,
    StringMatchingBlock,
    build_block_image,
)
from repro.hardware.scheduler import MatchScheduler
from repro.hardware.engine import EngineMatch
from repro.traffic import Packet, TrafficGenerator, TrafficProfile


class TestDualPortMemory:
    def test_read_and_bandwidth_accounting(self):
        memory = DualPortMemory({1: "a", 2: "b"}, name="m", reads_per_cycle_per_port=3)
        assert memory.read(1, port=0, cycle=0) == "a"
        assert memory.read(2, port=0, cycle=0) == "b"
        assert memory.read(1, port=1, cycle=0) == "a"
        assert memory.total_reads() == 3
        assert memory.port_stats[0].reads == 2

    def test_oversubscription_raises(self):
        memory = DualPortMemory({1: "a"}, reads_per_cycle_per_port=2)
        memory.read(1, 0, cycle=5)
        memory.read(1, 0, cycle=5)
        with pytest.raises(PortOversubscribedError):
            memory.read(1, 0, cycle=5)
        # the other port and other cycles are unaffected
        memory.read(1, 1, cycle=5)
        memory.read(1, 0, cycle=6)

    def test_invalid_port_and_missing_key(self):
        memory = DualPortMemory({1: "a"})
        with pytest.raises(ValueError):
            memory.read(1, port=7, cycle=0)
        with pytest.raises(KeyError):
            memory.read(99, port=0, cycle=0)

    def test_configuration_write(self):
        memory = DualPortMemory({}, name="cfg")
        memory.write(5, "value")
        assert memory.read(5, 0, 0) == "value"


class TestBlockImage:
    def test_image_covers_every_state(self, small_program):
        block = small_program.blocks[0]
        image = build_block_image(block)
        assert image.state_count() == block.num_states
        assert image.root_address in image.states
        assert len(image.lookup) == 256
        assert len(image.match_words) == block.match_memory.used_words

    def test_pointers_reference_existing_states(self, small_program):
        image = build_block_image(small_program.blocks[0])
        for entry in image.states.values():
            for address in entry.pointers.values():
                assert address in image.states


class TestBlockScan:
    def test_matches_equal_software_reference(self, small_ruleset, small_program, rng):
        from tests.conftest import text_with_patterns

        block = StringMatchingBlock(small_program.blocks[0])
        reference = AhoCorasickDFA.from_patterns(small_ruleset.patterns)
        packets = [
            Packet(payload=text_with_patterns(rng, small_ruleset.patterns, length=300), packet_id=i)
            for i in range(9)
        ]
        result = block.scan_packets(packets)
        for packet in packets:
            expected = {
                (packet.packet_id, position, number)
                for position, number in (
                    (pos, small_program.blocks[0].string_numbers[pid])
                    for pos, pid in reference.match(packet.payload)
                    if pid in small_program.blocks[0].string_numbers
                )
            }
            got = {
                (event.packet_id, event.end_offset, event.string_number)
                for event in result.events_for_packet(packet.packet_id)
            }
            assert got == expected

    def test_one_byte_per_engine_per_cycle(self, small_program):
        block = StringMatchingBlock(small_program.blocks[0])
        payload = bytes(range(256)) * 2
        packets = [Packet(payload=payload, packet_id=i) for i in range(ENGINES_PER_BLOCK)]
        result = block.scan_packets(packets)
        # six engines, equal-length packets: every engine consumes one byte
        # per cycle, so cycles == packet length and bytes == 6 x length
        assert result.engine_cycles == len(payload)
        assert result.bytes_processed == ENGINES_PER_BLOCK * len(payload)
        assert result.bytes_per_engine_cycle == pytest.approx(1.0)
        for engine in block.engines:
            assert engine.stats.bytes_per_cycle == pytest.approx(1.0)

    def test_port_sharing_never_oversubscribed(self, small_program):
        # the scan would raise PortOversubscribedError if an engine ever needed
        # more than its one guaranteed read per cycle
        block = StringMatchingBlock(small_program.blocks[0])
        packets = [Packet(payload=bytes([i]) * 64, packet_id=i) for i in range(12)]
        block.scan_packets(packets)
        for stats in block.state_memory.port_stats:
            assert stats.max_reads_in_cycle <= ENGINES_PER_PORT

    def test_engines_assigned_three_per_port(self, small_program):
        block = StringMatchingBlock(small_program.blocks[0])
        ports = [engine.port for engine in block.engines]
        assert ports == [0, 0, 0, 1, 1, 1]

    def test_empty_packet_list(self, small_program):
        block = StringMatchingBlock(small_program.blocks[0])
        result = block.scan_packets([])
        assert result.events == []
        assert result.engine_cycles == 0


class TestMatchScheduler:
    def test_walks_list_until_stop_bit(self):
        words = {0: (7, 9, False), 1: (11, 8191, True)}
        scheduler = MatchScheduler(words)
        scheduler.push(EngineMatch(engine_id=0, packet_id=3, end_offset=10, match_address=0))
        events = scheduler.drain()
        assert [e.string_number for e in events] == [7, 9, 11]
        assert all(e.packet_id == 3 and e.end_offset == 10 for e in events)
        assert scheduler.stats.words_read == 2

    def test_buffer_depth_tracked(self):
        scheduler = MatchScheduler({0: (1, 8191, True)})
        for i in range(4):
            scheduler.push(EngineMatch(0, 0, i, 0))
        assert scheduler.stats.max_buffer_depth == 4
        scheduler.drain()
        assert scheduler.pending() == 0


class TestAccelerator:
    def test_scan_equals_program_reference(self, small_ruleset, small_program, rng):
        from tests.conftest import text_with_patterns

        accelerator = HardwareAccelerator(small_program)
        packets = [
            Packet(payload=text_with_patterns(rng, small_ruleset.patterns, length=200), packet_id=i)
            for i in range(18)
        ]
        result = accelerator.scan(packets)
        for packet in packets:
            expected = {
                (packet.packet_id, pos, number)
                for pos, number in small_program.match(packet.payload)
            }
            got = {
                (e.packet_id, e.end_offset, e.string_number)
                for e in result.events_for_packet(packet.packet_id)
            }
            assert got == expected

    def test_group_replication(self, small_program):
        accelerator = HardwareAccelerator(small_program)
        assert accelerator.packet_groups == 6  # single-block program on Stratix III
        assert accelerator.total_blocks_used == 6
        assert accelerator.idle_blocks() == 0
        assert accelerator.nominal_throughput_gbps() == pytest.approx(44.2, abs=0.2)

    def test_injected_attacks_detected(self, small_ruleset, small_program):
        accelerator = HardwareAccelerator(small_program)
        generator = TrafficGenerator(
            small_ruleset, TrafficProfile(attack_probability=1.0, mean_payload_bytes=120), seed=17
        )
        packets = generator.packets(12)
        result = accelerator.scan(packets)
        alerts = accelerator.alerts_by_sid(result)
        for packet in packets:
            for sid in packet.injected_sids:
                assert any(event.packet_id == packet.packet_id for event in alerts[sid])
