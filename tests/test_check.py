"""Static verification layer: prover, linter, and idiom gate.

The load-bearing properties:

* the verifier *proves* clean programs clean — the paper's Fig. 2 example
  and randomized rulesets pass with zero findings on every backend, with no
  traffic scanned;
* it *catches* seeded corruption — flipping a single table entry, stored
  pointer, bitmap bit, failure link, packed-word pointer or match-memory
  word in any backend produces at least one ERROR;
* the ruleset linter flags duplicates, shadowing, sid conflicts and
  hardware-capacity overruns;
* the AST idiom checker enforces the CLI error idiom, and ``src/repro``
  itself passes it (the self-gate that keeps future drift out).
"""

from pathlib import Path

import pytest

from repro.backend import get_backend
from repro.check import (
    AUTOMATON_BACKENDS,
    Diagnostic,
    Report,
    check_paths,
    check_source,
    lint_rule_file,
    lint_ruleset,
    verify_cross_backend,
    verify_program,
)
from repro.cli import main
from repro.core.accelerator_config import compile_ruleset
from repro.fpga.devices import get_device
from repro.rulesets import generate_snort_like_ruleset

FIG2_PATTERNS = (b"he", b"she", b"his", b"hers")
SRC_ROOT = Path(__file__).resolve().parents[1] / "src" / "repro"


# ----------------------------------------------------------------------
# diagnostics currency
# ----------------------------------------------------------------------
class TestDiagnostics:
    def test_render_and_dict(self):
        d = Diagnostic("error", "DTP002", "boom", state=3, byte=0x69, source="dtp")
        assert d.render() == "error DTP002 [dtp state=3 byte=0x69] boom"
        assert d.as_dict() == {
            "severity": "error", "code": "DTP002", "message": "boom",
            "state": 3, "byte": 0x69, "source": "dtp",
        }

    def test_report_aggregation(self):
        report = Report(subject="x")
        report.add("warning", "RS004", "shadow")
        report.add("error", "RS001", "dup")
        assert not report.ok
        assert report.counts() == {"error": 1, "warning": 1, "info": 0}
        assert [d.code for d in report.sorted()] == ["RS001", "RS004"]
        assert report.as_dict()["errors"] == 1

    def test_invalid_severity_rejected(self):
        with pytest.raises(ValueError):
            Diagnostic("fatal", "X001", "nope")


# ----------------------------------------------------------------------
# the prover on clean programs: Fig. 2 + randomized, no traffic scanned
# ----------------------------------------------------------------------
class TestVerifyClean:
    @pytest.mark.parametrize("backend", AUTOMATON_BACKENDS + ("wu-manber",))
    def test_fig2_example_proves_clean(self, backend):
        program = get_backend(backend).compile(FIG2_PATTERNS)
        report = program.verify()
        assert report.ok and not report.warnings, report.render()

    @pytest.mark.parametrize("backend", AUTOMATON_BACKENDS)
    def test_randomized_ruleset_proves_clean(self, backend):
        patterns = tuple(generate_snort_like_ruleset(90, seed=17).patterns)
        report = verify_program(get_backend(backend).compile(patterns))
        assert report.ok, report.render()

    def test_fig2_cross_backend_bisimulation(self):
        report = verify_cross_backend(FIG2_PATTERNS)
        assert report.ok, report.render()

    def test_randomized_cross_backend_bisimulation(self):
        patterns = generate_snort_like_ruleset(150, seed=11).patterns
        report = verify_cross_backend(patterns)
        assert report.ok, report.render()

    def test_accelerator_program_proves_clean(self):
        ruleset = generate_snort_like_ruleset(80, seed=23)
        program = compile_ruleset(ruleset, get_device("stratix3"))
        report = verify_program(program)
        assert report.ok, report.render()

    def test_verify_against_wrong_patterns_fails(self):
        program = get_backend("dense").compile(FIG2_PATTERNS)
        report = verify_program(program, patterns=[b"he", b"she", b"hix", b"hers"])
        assert not report.ok

    def test_unknown_artifact_rejected(self):
        with pytest.raises(TypeError):
            verify_program(object(), patterns=[b"x"])


# ----------------------------------------------------------------------
# mutation detection: corrupt one entry per backend -> at least one ERROR
# ----------------------------------------------------------------------
def _mutate_ac(program):
    program.table[1, ord("e")] = 0  # sever 'h' --e--> 'he'


def _mutate_dense_table(program):
    program.table[1, ord("e")] = 0


def _mutate_dense_outputs(program):
    # retarget one packed match pid: state still matches, wrong pattern id
    assert len(program.match_pids), "fixture needs a matching state"
    program.match_pids[0] = (program.match_pids[0] + 1) % len(program.patterns)


def _mutate_bitmap(program):
    program.bitmaps[1] ^= 1 << ord("e")  # drop a real child edge


def _mutate_path(program):
    state = next(s for s in range(1, program.trie.num_states) if program.fail[s] == 0)
    program.fail[state] = program.trie.num_states - 1


def _mutate_dtp(program):
    state = next(s for s in range(program.num_states) if program.stored[s])
    byte = next(iter(program.stored[state]))
    program.stored[state][byte] = 0 if program.stored[state][byte] != 0 else 1


BACKEND_MUTATIONS = [
    pytest.param("ac", _mutate_ac, id="ac-table-entry"),
    pytest.param("dense", _mutate_dense_table, id="dense-table-entry"),
    pytest.param("dense", _mutate_dense_outputs, id="dense-match-pid"),
    pytest.param("bitmap", _mutate_bitmap, id="bitmap-bit"),
    pytest.param("path", _mutate_path, id="path-fail-link"),
    pytest.param("dtp", _mutate_dtp, id="dtp-stored-pointer"),
]


class TestMutationDetection:
    @pytest.mark.parametrize("backend, mutate", BACKEND_MUTATIONS)
    def test_single_entry_corruption_is_an_error(self, backend, mutate):
        program = get_backend(backend).compile(FIG2_PATTERNS)
        assert program.verify().ok  # sanity: clean before the mutation
        mutate(program)
        report = program.verify()
        assert report.errors, f"{backend} mutation went undetected"

    def test_corrupt_stored_pointer_in_accelerator_block(self):
        ruleset = generate_snort_like_ruleset(60, seed=5)
        program = compile_ruleset(ruleset, get_device("stratix3"))
        block = program.blocks[0]
        state = next(s for s in range(block.dtp.num_states) if block.dtp.stored[s])
        byte = next(iter(block.dtp.stored[state]))
        block.dtp.stored[state][byte] ^= 1
        assert verify_program(program).errors

    def test_corrupt_match_memory_word(self):
        ruleset = generate_snort_like_ruleset(60, seed=5)
        program = compile_ruleset(ruleset, get_device("cyclone3"))
        block = program.blocks[0]
        first, second, last = block.match_memory.words[0]
        block.match_memory.words[0] = (first ^ 1, second, last)
        assert verify_program(program).errors

    def test_corrupt_packed_record_pointer(self):
        ruleset = generate_snort_like_ruleset(60, seed=5)
        program = compile_ruleset(ruleset, get_device("stratix3"))
        block = program.blocks[0]
        state = next(
            s for s, record in sorted(block.packed.records.items())
            if record.pointers
        )
        char, target = block.packed.records[state].pointers[0]
        block.packed.records[state].pointers[0] = (char, (target + 1) % block.dtp.num_states)
        assert verify_program(program).errors

    def test_unsound_wu_manber_shift_is_an_error(self):
        program = get_backend("wu-manber").compile(FIG2_PATTERNS)
        assert program.verify().ok
        chunk = next(iter(program._shift))
        program._shift[chunk] = program._shift[chunk] + 5  # would skip matches
        assert program.verify().errors

    def test_capacity_overrun_is_a_warning_not_an_error(self):
        # one state fanning out to 16 children needs 16 stored pointers —
        # over the 13-pointer hardware word, but functionally correct
        patterns = tuple(b"abc" + bytes([k]) for k in range(65, 81))
        program = get_backend("dtp").compile(patterns)
        report = program.verify()
        assert report.ok
        assert any(d.code == "DTP006" for d in report.warnings)


# ----------------------------------------------------------------------
# ruleset linter
# ----------------------------------------------------------------------
class TestRulesetLint:
    def test_clean_ruleset(self):
        report = lint_ruleset([b"alpha", b"bravo", b"charlie"])
        assert report.ok and not report.warnings

    def test_duplicate_pattern_is_error(self):
        report = lint_ruleset([b"he", b"she", b"he"])
        assert any(d.code == "RS001" for d in report.errors)

    def test_substring_shadowing_is_warning(self):
        report = lint_ruleset([b"he", b"she", b"hers"])
        shadows = [d for d in report.warnings if d.code == "RS004"]
        assert len(shadows) == 2  # he-in-she and he-in-hers
        assert report.ok  # warnings only

    def test_sid_conflict_is_error(self):
        from repro.rulesets import PatternRule

        report = lint_ruleset([
            PatternRule(pattern=b"one", sid=7),
            PatternRule(pattern=b"two", sid=7),
        ])
        assert any(d.code == "RS002" for d in report.errors)

    def test_empty_ruleset_is_error(self):
        assert any(d.code == "RS003" for d in lint_ruleset([]).errors)

    def test_overlong_pattern_is_warning(self):
        report = lint_ruleset([b"x" * 300, b"ok"])
        assert any(d.code == "RS006" for d in report.warnings)

    def test_capacity_overrun_is_warning(self):
        patterns = [b"abc" + bytes([k]) for k in range(65, 81)]
        report = lint_ruleset(patterns)
        assert any(d.code == "RS007" for d in report.warnings)

    def test_rule_file_lint_reports_per_line(self, tmp_path):
        rules = tmp_path / "bad.rules"
        rules.write_text(
            'alert tcp any any -> any 80 (content:"ok"; sid:1;)\n'
            "this is not a rule\n"
            'alert tcp any any -> any 80 (msg:"no content"; sid:2;)\n'
            'alert tcp any any -> any 80 (content:"ok"; sid:1;)\n',
            encoding="utf-8",
        )
        report = lint_rule_file(str(rules))
        codes = {(d.code, d.rule) for d in report.errors}
        assert ("RS101", 2) in codes  # unparsable line, with its line number
        assert ("RS003", 3) in codes  # content-less rule
        assert any(code == "RS001" for code, _ in codes)  # duplicate pattern
        assert any(code == "RS002" for code, _ in codes)  # sid conflict


# ----------------------------------------------------------------------
# the idiom gate
# ----------------------------------------------------------------------
class TestIdiomChecker:
    def test_bare_except(self):
        report = check_source("try:\n    pass\nexcept:\n    pass\n")
        assert [d.code for d in report.errors] == ["IDM101"]

    def test_sys_exit_in_handler(self):
        source = "import sys\ndef _cmd_x(args):\n    sys.exit(2)\n"
        assert any(d.code == "IDM102" for d in check_source(source).errors)

    def test_stderr_print_requires_nonzero_return(self):
        bad = (
            "import sys\n"
            "def _cmd_x(args):\n"
            "    print('no', file=sys.stderr)\n"
            "    return 0\n"
        )
        good = bad.replace("return 0", "return 1")
        assert any(d.code == "IDM103" for d in check_source(bad).errors)
        assert check_source(good).ok

    def test_config_error_raise_in_cli_module(self):
        source = (
            "def _cmd_x(args):\n"
            "    raise ConfigError('nope')\n"
        )
        assert any(d.code == "IDM104" for d in check_source(source).errors)
        # ...but a spec-layer module (no _cmd_ handlers) may raise it freely
        assert check_source("def build():\n    raise ConfigError('nope')\n").ok

    def test_must_be_message_requires_value(self):
        bad = "def f(n):\n    raise ValueError('workers must be >= 1')\n"
        good = "def f(n):\n    raise ValueError(f'workers must be >= 1, got {n}')\n"
        protocol = (
            "def f():\n"
            "    raise RuntimeError('start_packet must be called before process_byte')\n"
        )
        assert any(d.code == "IDM105" for d in check_source(bad).errors)
        assert check_source(good).ok
        assert check_source(protocol).ok  # no rejected value to show

    def test_count_flag_requires_require_count(self):
        bad = (
            "def _cmd_x(args):\n"
            "    return do(args.workers)\n"
        )
        good = (
            "def _cmd_x(args):\n"
            "    _require_count('--workers', args.workers)\n"
            "    return do(args.workers)\n"
        )
        assert any(d.code == "IDM106" for d in check_source(bad).errors)
        assert check_source(good).ok

    def test_syntax_error_is_reported_not_raised(self):
        report = check_source("def broken(:\n")
        assert any(d.code == "IDM100" for d in report.errors)

    def test_src_repro_passes_the_gate(self):
        """The self-gate: the shipped package conforms to its own idiom."""
        report = check_paths([str(SRC_ROOT)])
        assert report.ok, report.render()


# ----------------------------------------------------------------------
# surfaces: CLI subcommands and the Session hook
# ----------------------------------------------------------------------
class TestSurfaces:
    def test_cli_verify_proves_and_exits_zero(self, capsys, tmp_path):
        artifact = tmp_path / "verify.json"
        assert main(["verify", "--size", "40", "--seed", "3",
                     "--backend", "dtp", "--json", str(artifact)]) == 0
        out = capsys.readouterr().out
        assert "0 error(s)" in out and "proved:" in out
        import json

        payload = json.loads(artifact.read_text())
        assert payload["ok"] is True and payload["diagnostics"] == []

    def test_cli_verify_all_backends(self, capsys):
        assert main(["verify", "--size", "30", "--seed", "3",
                     "--backend", "all"]) == 0
        assert "cross-backend equivalence" in capsys.readouterr().out

    def test_cli_lint_flags_bad_rules_file(self, capsys, tmp_path):
        rules = tmp_path / "dup.rules"
        rules.write_text(
            'alert tcp any any -> any 80 (content:"same"; sid:1;)\n'
            'alert tcp any any -> any 80 (content:"same"; sid:2;)\n',
            encoding="utf-8",
        )
        assert main(["lint", "--rules", str(rules)]) == 1
        # RuleSet dedupes identical patterns at ingest; the linter sees the
        # raw file, so the duplicate is reported with its line number
        assert "RS001" in capsys.readouterr().out

    def test_cli_lint_code_paths(self, capsys, tmp_path):
        bad = tmp_path / "handlers.py"
        bad.write_text("def _cmd_x(args):\n    return do(args.workers)\n")
        assert main(["lint", "--code", str(bad)]) == 1
        assert "IDM106" in capsys.readouterr().out
        assert main(["lint", "--code", str(SRC_ROOT / "check")]) == 0

    def test_session_verify_hook(self):
        from repro.api import EngineSpec, PipelineConfig, RulesSpec, Session, SourceSpec

        config = PipelineConfig(
            mode="packets",
            source=SourceSpec(kind="generator", count=2, seed=4),
            rules=RulesSpec(kind="synthetic", size=30, seed=4),
            engine=EngineSpec(backend="dtp"),
        )
        with Session.from_config(config) as session:
            report = session.verify()
        assert report.ok, report.render()

    def test_mixin_verify_hook_on_every_backend(self):
        for name in AUTOMATON_BACKENDS:
            assert get_backend(name).compile(FIG2_PATTERNS).verify().ok
