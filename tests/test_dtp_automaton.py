"""Tests for the DTP-compressed automaton — the paper's core contribution."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.automata import AhoCorasickDFA
from repro.core import DTPAutomaton, build_default_transition_table


class TestFigure2Example:
    """The worked example of Figures 1 and 2 (strings he, she, his, hers)."""

    def test_staged_averages(self, example_dtp):
        staged = example_dtp.staged_counts()
        averages = staged.averages()
        # exact full-DFA counts; the paper's figure reports 2.5 for the
        # original (see EXPERIMENTS.md), the compressed stages match exactly.
        assert averages["original"] == pytest.approx(2.6)
        assert averages["after_d1"] == pytest.approx(1.1)
        assert averages["after_d1_d2"] == pytest.approx(0.5)
        assert averages["after_d1_d2_d3"] == pytest.approx(0.1)

    def test_only_the_deep_pointer_remains(self, example_dtp):
        trie = example_dtp.dfa.trie
        remaining = [
            (state, char, target)
            for state, pointers in enumerate(example_dtp.stored)
            for char, target in pointers.items()
        ]
        assert len(remaining) == 1
        state, char, target = remaining[0]
        assert trie.string_of(state) == b"her"
        assert chr(char) == "s"
        assert trie.string_of(target) == b"hers"

    def test_matches_equal_dfa(self, example_dtp, example_dfa):
        data = b"ushers and heroes share his hers she shed"
        assert sorted(example_dtp.match(data)) == sorted(example_dfa.match(data))

    def test_reduction_percent(self, example_dtp):
        assert example_dtp.reduction_percent() == pytest.approx(100 * (1 - 1 / 26), abs=0.1)


class TestEquivalence:
    def test_state_level_equivalence_on_random_data(self, small_ruleset, rng):
        from tests.conftest import text_with_patterns

        dtp = DTPAutomaton.from_ruleset(small_ruleset)
        data = text_with_patterns(rng, small_ruleset.patterns, length=3000)
        assert dtp.verify_equivalence(data)

    def test_match_equivalence_binary_data(self, small_ruleset, rng):
        dtp = DTPAutomaton.from_ruleset(small_ruleset)
        data = bytes(rng.randrange(0, 256) for _ in range(3000))
        assert sorted(dtp.match(data)) == sorted(dtp.dfa.match(data))

    def test_history_resets_between_packets(self, example_dtp, example_dfa):
        # Two packets scanned separately must not leak history; "rs" after a
        # packet ending in "he" must NOT report "hers".
        first, second = b"she", b"rs"
        combined_matches = example_dfa.match(first + second)
        separate = example_dtp.scan_packets([first, second])
        assert all((len(second), pid) not in separate[1] for pid in range(4))
        assert any(pid == 3 for _, pid in combined_matches)  # sanity: joined text has "hers"

    def test_d1_only_and_d1_d2_variants_equivalent(self, small_ruleset, rng):
        from tests.conftest import text_with_patterns

        dfa = AhoCorasickDFA.from_patterns(small_ruleset.patterns[:60])
        data = text_with_patterns(rng, small_ruleset.patterns[:60])
        expected = sorted(dfa.match(data))
        for include_d2, include_d3 in ((False, False), (True, False), (True, True)):
            dtp = DTPAutomaton(dfa, include_d2=include_d2, include_d3=include_d3)
            assert sorted(dtp.match(data)) == expected

    def test_iter_states_matches_dfa(self, example_dtp, example_dfa):
        data = b"hishers"
        assert list(example_dtp.iter_states(data)) == list(example_dfa.iter_states(data))


class TestStatistics:
    def test_pointer_histogram_sums_to_states(self, small_ruleset):
        dtp = DTPAutomaton.from_ruleset(small_ruleset)
        histogram = dtp.pointer_count_histogram()
        assert sum(histogram.values()) == dtp.num_states
        assert sum(k * v for k, v in histogram.items()) == dtp.stored_pointer_count()

    def test_reduction_on_synthetic_ruleset(self, small_ruleset):
        dtp = DTPAutomaton.from_ruleset(small_ruleset)
        assert dtp.reduction_percent() > 90.0
        assert dtp.average_stored_pointers() < 5.0

    def test_matching_states_equal_patterns(self, small_ruleset):
        # the generator forbids substring containment, so exactly one
        # matching state per rule
        dtp = DTPAutomaton.from_ruleset(small_ruleset)
        assert len(dtp.matching_states()) == len(small_ruleset)

    def test_states_exceeding_limit_listing(self, small_ruleset):
        dtp = DTPAutomaton.from_ruleset(small_ruleset)
        limit = dtp.max_pointers_per_state()
        assert dtp.states_exceeding(limit) == []
        assert len(dtp.states_exceeding(limit - 1)) >= 1


@settings(max_examples=25, deadline=None)
@given(
    patterns=st.lists(st.binary(min_size=1, max_size=6), min_size=1, max_size=15, unique=True),
    data=st.binary(max_size=400),
)
def test_dtp_equivalent_to_dfa_property(patterns, data):
    """The compressed automaton is observationally equivalent to the full DFA."""
    dfa = AhoCorasickDFA.from_patterns(patterns)
    dtp = DTPAutomaton(dfa)
    assert sorted(dtp.match(data)) == sorted(dfa.match(data))


@settings(max_examples=15, deadline=None)
@given(
    patterns=st.lists(st.binary(min_size=1, max_size=5), min_size=1, max_size=10, unique=True),
    data=st.binary(max_size=200),
    d2_slots=st.integers(min_value=0, max_value=6),
)
def test_dtp_equivalence_for_any_slot_count(patterns, data, d2_slots):
    dfa = AhoCorasickDFA.from_patterns(patterns)
    table = build_default_transition_table(dfa, d2_slots=d2_slots)
    dtp = DTPAutomaton(dfa, defaults=table)
    assert sorted(dtp.match(data)) == sorted(dfa.match(data))
