"""Property tests pinning the batched streaming hot path.

The services now feed whole shard batches through
:meth:`repro.streaming.StreamScanner.scan_batch`, which concatenates
consecutive same-flow segments into one backend crossing.  These tests hold
that fast path to the per-segment contract from three directions:

* **boundary splits** — every pattern, split at every offset across 2 and 3
  segment boundaries, must match identically one-shot vs streamed vs batched
  (the ScanState tail-carry property under the new code path);
* **statistics parity** — the batched path must report byte-identical
  :class:`ScannerStatistics` and :class:`FlowTableStatistics` counters, and
  leave the identical LRU recency order, as segment-at-a-time scanning;
* **eviction pressure** — a batch that could evict must fall back to the
  exact per-segment loop, producing the same events, eviction records and
  restart behaviour the serial path shows.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.backend import get_backend
from repro.rulesets import RuleSet, generate_snort_like_ruleset
from repro.streaming import FlowKey, FlowTable, ScanService, StreamScanner
from repro.traffic import Packet, TrafficGenerator
from tests.conftest import random_text

BACKENDS = ("dense", "dtp")


def make_key(n: int = 0) -> FlowKey:
    return FlowKey(f"10.1.0.{n}", "192.168.9.9", 41000 + n, 80, "tcp")


def make_header(n: int = 0):
    from repro.traffic import FiveTuple

    return FiveTuple(f"10.1.0.{n}", "192.168.9.9", 41000 + n, 80, "tcp")


def segment_events(scanner: StreamScanner, key: FlowKey, segments):
    events = []
    for packet_id, segment in enumerate(segments):
        events.extend(scanner.scan_segment(key, segment, packet_id))
    return [(e.end_offset, e.string_number) for e in events]


def batch_events(scanner: StreamScanner, key: FlowKey, segments):
    per_item, evictions = scanner.scan_batch(
        [(key, segment, packet_id) for packet_id, segment in enumerate(segments)]
    )
    assert evictions == []
    return [(e.end_offset, e.string_number) for item in per_item for e in item]


# ----------------------------------------------------------------------
# every pattern, every split offset, 2 and 3 segments
# ----------------------------------------------------------------------
class TestBoundarySplits:
    @pytest.fixture(scope="class", params=BACKENDS)
    def compiled(self, request):
        rng = __import__("random").Random(2026)
        patterns = [rule.pattern for rule in generate_snort_like_ruleset(10, seed=33)]
        patterns += [b"he", b"she", b"hers", b"aBcDeF"]
        payloads = []
        for pattern in patterns:
            body = bytearray(random_text(rng, 8) + pattern + random_text(rng, 8))
            payloads.append(bytes(body))
        return get_backend(request.param).compile(patterns), payloads

    def test_two_segment_split_at_every_offset(self, compiled):
        program, payloads = compiled
        for flow_n, payload in enumerate(payloads):
            expected = program.scan(payload)
            assert expected, "every payload embeds its pattern"
            for cut in range(1, len(payload)):
                segments = [payload[:cut], payload[cut:]]
                for events_of in (segment_events, batch_events):
                    scanner = StreamScanner(program)
                    got = events_of(scanner, make_key(flow_n), segments)
                    assert got == expected, (
                        f"pattern #{flow_n} split at {cut} via {events_of.__name__}"
                    )

    def test_three_segment_splits_across_the_pattern(self, compiled):
        """Both boundaries land inside the embedded pattern, the regime where
        the tail-carry state does all the work."""
        program, payloads = compiled
        for flow_n, payload in enumerate(payloads):
            expected = program.scan(payload)
            lo, hi = 8, len(payload) - 8  # the embedded pattern's span
            for first in range(lo + 1, hi):
                for second in range(first + 1, hi):
                    segments = [payload[:first], payload[first:second], payload[second:]]
                    for events_of in (segment_events, batch_events):
                        scanner = StreamScanner(program)
                        got = events_of(scanner, make_key(flow_n), segments)
                        assert got == expected, (
                            f"pattern #{flow_n} split at ({first}, {second}) "
                            f"via {events_of.__name__}"
                        )


# ----------------------------------------------------------------------
# statistics parity: batched == per-segment, to the counter
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def drift_ruleset() -> RuleSet:
    return generate_snort_like_ruleset(30, seed=91)


@pytest.fixture(scope="module")
def drift_workload(drift_ruleset):
    generator = TrafficGenerator(drift_ruleset, seed=92)
    flows = generator.flows(9, num_packets=5, split_patterns=1, segment_bytes=70)
    return TrafficGenerator.interleave(flows)


class TestStatisticsParity:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("track_nocase", (False, True))
    def test_scanner_counters_and_lru_order_identical(
        self, drift_ruleset, drift_workload, backend, track_nocase
    ):
        program = get_backend(backend).compile(drift_ruleset.patterns)
        reference = StreamScanner(program, track_nocase=track_nocase)
        batched = StreamScanner(program, track_nocase=track_nocase)

        items = [
            (StreamScanner.flow_key(p), p.payload, p.packet_id)
            for p in drift_workload
        ]
        expected = [reference.scan_segment(*item) for item in items]
        got, evictions = batched.scan_batch(items)

        assert got == expected
        assert evictions == []
        assert dataclasses.asdict(batched.stats) == dataclasses.asdict(reference.stats)
        assert dataclasses.asdict(batched.flows.stats) == dataclasses.asdict(
            reference.flows.stats
        )
        # identical recency order → identical future eviction decisions
        assert batched.flows.keys() == reference.flows.keys()
        for key in reference.flows.keys():
            ours, theirs = batched.flows.peek(key), reference.flows.peek(key)
            assert ours.packets == theirs.packets
            assert ours.states == theirs.states
            assert ours.lower_states == theirs.lower_states
            assert ours.matched == theirs.matched
            assert ours.matched_lower == theirs.matched_lower

    def test_service_stats_identical_to_per_packet_submit(
        self, drift_ruleset, drift_workload
    ):
        """ScanService.scan (batched) vs submit() (per segment): same events,
        same stats() dict — the drift the ISSUE names, locked shut."""
        program = get_backend("dense").compile(drift_ruleset.patterns)
        batched_service = ScanService(program, num_shards=3)
        submit_service = ScanService(program, num_shards=3)

        result = batched_service.scan(drift_workload)
        submitted = []
        for packet in drift_workload:
            submitted.extend(submit_service.submit(packet))

        assert sorted(
            result.events, key=lambda e: (e.packet_id, e.end_offset, e.string_number)
        ) == sorted(
            submitted, key=lambda e: (e.packet_id, e.end_offset, e.string_number)
        )
        assert batched_service.stats() == submit_service.stats()
        for ours, theirs in zip(batched_service.engines, submit_service.engines):
            assert dataclasses.asdict(ours.stats) == dataclasses.asdict(theirs.stats)
            assert dataclasses.asdict(ours.flows.stats) == dataclasses.asdict(
                theirs.flows.stats
            )


# ----------------------------------------------------------------------
# eviction pressure: exact fallback, exact records
# ----------------------------------------------------------------------
class TestEvictionPressure:
    @staticmethod
    def build_items(num_flows: int, segments: int):
        rng = __import__("random").Random(17)
        items = []
        for seg in range(segments):
            for flow in range(num_flows):
                items.append((make_key(flow), random_text(rng, 40), seg))
        return items

    @pytest.mark.parametrize("capacity", (1, 2, 3))
    def test_fallback_matches_per_segment_loop(self, drift_ruleset, capacity):
        """Under eviction pressure scan_batch must behave exactly like the
        old per-segment loop — events, counters, eviction records with the
        per-item positions the IDS correlates on."""
        program = get_backend("dense").compile(drift_ruleset.patterns)
        items = self.build_items(num_flows=4, segments=3)

        reference = StreamScanner(program, FlowTable(capacity))
        expected_evictions = []
        position = 0

        def record(entry):
            expected_evictions.append((position, entry.key))

        reference.flows.on_evict = record
        expected = []
        for position, item in enumerate(items):
            expected.append(reference.scan_segment(*item))
        reference.flows.on_evict = None

        batched = StreamScanner(program, FlowTable(capacity))
        got, evictions = batched.scan_batch(items)

        assert got == expected
        assert evictions == expected_evictions
        assert evictions, "the workload must actually evict"
        assert dataclasses.asdict(batched.stats) == dataclasses.asdict(reference.stats)
        assert dataclasses.asdict(batched.flows.stats) == dataclasses.asdict(
            reference.flows.stats
        )
        assert batched.flows.keys() == reference.flows.keys()

    def test_exactly_full_table_stays_on_the_fast_path(self, drift_ruleset):
        """A batch that fills the table to exactly its capacity cannot evict
        and must not fall back (no eviction records, same results)."""
        program = get_backend("dense").compile(drift_ruleset.patterns)
        items = self.build_items(num_flows=4, segments=2)
        scanner = StreamScanner(program, FlowTable(capacity=4))
        per_item, evictions = scanner.scan_batch(items)
        assert evictions == []
        assert scanner.flows.stats.evicted == 0
        assert len(scanner.flows) == 4

        # ...and the next batch introducing a fifth flow falls back and evicts
        extra = [(make_key(9), b"overflow-segment", 0)]
        _, second_evictions = scanner.scan_batch(extra)
        assert second_evictions == [(0, make_key(0))]
        assert scanner.flows.stats.evicted == 1

    def test_service_level_eviction_equivalence(self, drift_ruleset):
        """End to end: a capacity-1 sharded service reports identical events
        and eviction counters whether batched or per-packet."""
        program = get_backend("dense").compile(drift_ruleset.patterns)
        packets = []
        for seg in range(3):
            for flow in range(5):
                packets.append(
                    Packet(
                        payload=b"x" * 30 + bytes([65 + flow]) * 10,
                        header=make_header(flow),
                        packet_id=seg,
                    )
                )
        batched = ScanService(program, num_shards=2, flow_capacity_per_shard=1)
        per_packet = ScanService(program, num_shards=2, flow_capacity_per_shard=1)
        result = batched.scan(packets)
        for packet in packets:
            per_packet.submit(packet)
        assert batched.stats() == per_packet.stats()
        assert batched.evicted_flows > 0
        assert result.packets == len(packets)
