"""Tests for 324-bit word packing and the bit-level state encoding."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import DTPAutomaton, MatchMemory, PackingError, pack_state_machine
from repro.core.memory_layout import StateRecord, _Packer, default_target_order
from repro.core.state_types import WORD_BITS


def _pack_sizes(pointer_counts):
    """Pack synthetic states with the given pointer counts; return the packer."""
    records = [
        StateRecord(state_id=index, pointers=[(0, 0)] * count)
        for index, count in enumerate(pointer_counts)
    ]
    packer = _Packer()
    packer.pack_group(records)
    return packer, records


class TestPacker:
    def test_no_slot_overlap(self):
        packer, records = _pack_sizes([0, 1, 2, 4, 5, 7, 8, 10, 11, 13, 0, 0, 3, 3, 1, 1])
        used = {}
        for record in records:
            placement = packer.placements[record.state_id]
            for slot in placement.state_type.slot_range():
                key = (placement.word_index, slot)
                assert key not in used, f"slot collision at {key}"
                used[key] = record.state_id

    def test_every_state_placed(self):
        counts = [0] * 20 + [3] * 7 + [6] * 3 + [9] * 2 + [12]
        packer, records = _pack_sizes(counts)
        assert len(packer.placements) == len(records)

    def test_gap_free_for_mixed_sizes(self):
        # 1 five-slot + 1 three-slot + 1 one-slot fill a word exactly
        packer, _ = _pack_sizes([6, 3, 1])
        assert packer.next_word == 1

    def test_full_word_state(self):
        packer, _ = _pack_sizes([13])
        assert packer.next_word == 1

    def test_singles_fill_leftovers(self):
        # a 7-slot state leaves two single slots
        packer, _ = _pack_sizes([9, 0, 0])
        assert packer.next_word == 1


class TestPackStateMachine:
    def test_pack_small_automaton(self, example_dtp):
        packed = pack_state_machine(example_dtp)
        assert packed.num_words >= 1
        assert len(packed.placements) == example_dtp.num_states
        assert packed.slot_utilisation() <= 1.0
        assert packed.memory_bits() == packed.num_words * WORD_BITS

    def test_high_utilisation_on_ruleset(self, small_ruleset):
        dtp = DTPAutomaton.from_ruleset(small_ruleset)
        packed = pack_state_machine(dtp)
        # "no gaps of unused memory": only the per-phase trailing words may be
        # partially filled.
        assert packed.slot_utilisation() > 0.97

    def test_capacity_enforced(self, example_dtp):
        with pytest.raises(PackingError):
            pack_state_machine(example_dtp, capacity_words=1)

    def test_default_targets_packed_first(self, small_ruleset):
        dtp = DTPAutomaton.from_ruleset(small_ruleset)
        packed = pack_state_machine(dtp)
        priority = default_target_order(dtp)
        # every default target lives in the reserved low-address region
        max_priority_word = max(packed.placements[s].word_index for s in priority)
        non_priority = [s for s in packed.placements if s not in set(priority)]
        if non_priority:
            min_other_word = min(packed.placements[s].word_index for s in non_priority)
            assert max_priority_word <= min_other_word

    def test_pointer_limit_raises(self):
        record_like = DTPAutomaton.from_patterns([b"ab"])
        record_like.stored[0] = {i: 1 for i in range(14)}  # force an illegal state
        with pytest.raises(PackingError):
            pack_state_machine(record_like)

    def test_type_histogram_counts_all_states(self, small_ruleset):
        dtp = DTPAutomaton.from_ruleset(small_ruleset)
        packed = pack_state_machine(dtp)
        assert sum(packed.type_histogram().values()) == dtp.num_states


class TestEncoding:
    def test_encode_decode_roundtrip(self, small_ruleset):
        dtp = DTPAutomaton.from_ruleset(small_ruleset)
        matches = {s: [pid for pid in dtp.outputs[s]] for s in dtp.matching_states()}
        match_memory = MatchMemory.build(matches)
        packed = pack_state_machine(dtp, match_memory=match_memory)
        words = packed.encode_words(pad_lookup=lambda state, char: int(dtp.dfa.table[state, char]))
        assert len(words) == packed.num_words
        assert all(word < (1 << WORD_BITS) for word in words)

        for state_id in list(packed.records)[:200]:
            record = packed.records[state_id]
            decoded = packed.decode_state(words, state_id)
            assert decoded["has_match"] == (record.match_address is not None)
            if record.match_address is not None:
                assert decoded["match_address"] == record.match_address
            # every stored pointer must appear in the decoded pointer list
            decoded_pairs = {(char, address, type_id) for char, address, type_id in decoded["pointers"]}
            for char, target in record.pointers:
                address, type_id = packed.address_of(target)
                assert (char, address, type_id) in decoded_pairs
            # every decoded pointer must be *correct* (padding is redundant
            # but never wrong): following char c from this state reaches the
            # state stored at that address
            reverse = {packed.address_of(s): s for s in packed.placements}
            for char, address, type_id in decoded["pointers"]:
                assert reverse[(address, type_id)] == int(dtp.dfa.table[state_id, char])

    def test_encode_without_pad_lookup(self, example_dtp):
        packed = pack_state_machine(example_dtp)
        words = packed.encode_words()
        assert len(words) == packed.num_words

    def test_address_of_matches_placement(self, example_dtp):
        packed = pack_state_machine(example_dtp)
        for state_id, placement in packed.placements.items():
            assert packed.address_of(state_id) == (placement.word_index, placement.type_id)


@settings(max_examples=25, deadline=None)
@given(counts=st.lists(st.integers(min_value=0, max_value=13), min_size=1, max_size=60))
def test_packer_never_overlaps_property(counts):
    packer, records = _pack_sizes(counts)
    used = set()
    for record in records:
        placement = packer.placements[record.state_id]
        for slot in placement.state_type.slot_range():
            key = (placement.word_index, slot)
            assert key not in used
            used.add(key)
    # total slots used is exactly the sum of state sizes
    assert len(used) == sum(r.slots for r in records)
