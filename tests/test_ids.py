"""Tests for the header classifier and the end-to-end IDS pipeline."""

import pytest

from repro.ids import HeaderClassifier, HeaderPattern, IDSRule, IntrusionDetectionSystem
from repro.rulesets import parse_rules
from repro.traffic import FiveTuple, Packet


def header(src="10.0.0.1", dst="192.168.1.5", sport=40000, dport=80, proto="tcp"):
    return FiveTuple(src, dst, sport, dport, proto)


class TestHeaderPattern:
    def test_any_matches_everything(self):
        assert HeaderPattern().matches(header())
        assert HeaderPattern().matches(header(proto="udp", dport=53))

    def test_protocol_filter(self):
        assert HeaderPattern(protocol="tcp").matches(header(proto="tcp"))
        assert not HeaderPattern(protocol="udp").matches(header(proto="tcp"))

    def test_cidr_matching(self):
        pattern = HeaderPattern(dst_ip="192.168.0.0/16")
        assert pattern.matches(header(dst="192.168.44.7"))
        assert not pattern.matches(header(dst="10.1.2.3"))

    def test_negated_ip(self):
        pattern = HeaderPattern(src_ip="!10.0.0.0/8")
        assert not pattern.matches(header(src="10.9.9.9"))
        assert pattern.matches(header(src="172.16.0.1"))

    def test_port_and_range(self):
        assert HeaderPattern(dst_port="80").matches(header(dport=80))
        assert not HeaderPattern(dst_port="80").matches(header(dport=81))
        assert HeaderPattern(dst_port="1024:65535").matches(header(dport=8080))
        assert not HeaderPattern(dst_port="1024:65535").matches(header(dport=80))
        assert HeaderPattern(src_port="!22").matches(header(sport=23))

    def test_snort_variables_treated_as_any(self):
        pattern = HeaderPattern(src_ip="$EXTERNAL_NET", dst_ip="$HOME_NET")
        assert pattern.matches(header())


class TestHeaderClassifier:
    def test_classify_returns_matching_rule_ids(self):
        classifier = HeaderClassifier()
        classifier.add_rule(1, HeaderPattern(dst_port="80"))
        classifier.add_rule(2, HeaderPattern(dst_port="443"))
        classifier.add_rule(3, HeaderPattern())
        assert classifier.classify(header(dport=80)) == [1, 3]
        assert classifier.classify(header(dport=443)) == [2, 3]
        assert len(classifier) == 3

    def test_missing_header_matches_all(self):
        classifier = HeaderClassifier()
        classifier.add_rule(7, HeaderPattern(dst_port="80"))
        assert classifier.classify(None) == [7]


class TestPipeline:
    def _rules(self):
        return [
            IDSRule(sid=1, header=HeaderPattern(protocol="tcp", dst_port="80"),
                    contents=(b"cmd.exe",), msg="cmd.exe over http"),
            IDSRule(sid=2, header=HeaderPattern(), contents=(b"root.exe", b"GET /"),
                    msg="two content strings"),
            IDSRule(sid=3, header=HeaderPattern(protocol="udp", dst_port="53"),
                    contents=(b"baddomain",), msg="dns"),
        ]

    def test_alert_requires_header_and_content(self):
        ids = IntrusionDetectionSystem(self._rules())
        hit = Packet(payload=b"GET /scripts/cmd.exe HTTP/1.0", header=header(dport=80), packet_id=0)
        wrong_port = Packet(payload=b"GET /scripts/cmd.exe HTTP/1.0", header=header(dport=8081), packet_id=1)
        no_content = Packet(payload=b"GET /index.html", header=header(dport=80), packet_id=2)
        alerts = ids.process([hit, wrong_port, no_content])
        sids = {(a.packet_id, a.sid) for a in alerts}
        assert (0, 1) in sids
        assert all(packet_id != 1 or sid != 1 for packet_id, sid in sids)
        assert all(packet_id != 2 for packet_id, sid in sids)

    def test_rule_with_multiple_contents_requires_all(self):
        ids = IntrusionDetectionSystem(self._rules())
        only_one = Packet(payload=b"GET /index root.ex", header=header(), packet_id=0)
        both = Packet(payload=b"GET /a root.exe", header=header(), packet_id=1)
        alerts = ids.process([only_one, both])
        assert {a.packet_id for a in alerts if a.sid == 2} == {1}

    def test_hardware_and_software_paths_agree(self):
        rules = self._rules()
        packets = [
            Packet(payload=b"GET /x cmd.exe root.exe baddomain", header=header(dport=80), packet_id=0),
            Packet(payload=b"nothing interesting", header=header(), packet_id=1),
            Packet(payload=b"baddomain lookup", header=header(proto="udp", dport=53), packet_id=2),
        ]
        software = IntrusionDetectionSystem(rules, use_hardware_model=False)
        hardware = IntrusionDetectionSystem(rules, use_hardware_model=True)
        software_alerts = {(a.packet_id, a.sid) for a in software.process(packets)}
        hardware_alerts = {(a.packet_id, a.sid) for a in hardware.process(packets)}
        assert software_alerts == hardware_alerts

    def test_statistics_updated(self):
        ids = IntrusionDetectionSystem(self._rules())
        ids.process([Packet(payload=b"cmd.exe", header=header(dport=80), packet_id=0)])
        assert ids.stats.packets_processed == 1
        assert ids.stats.payload_bytes == 7
        assert ids.stats.alerts_raised >= 1

    def test_from_parsed_snort_rules(self):
        specs = parse_rules([
            'alert tcp any any -> any 80 (msg:"m1"; content:"attack-one"; sid:101;)',
            'alert tcp any any -> any any (msg:"m2"; content:"|DE AD BE EF|"; sid:102;)',
        ])
        ids = IntrusionDetectionSystem.from_specs(specs)
        packets = [
            Packet(payload=b"xx attack-one yy", header=header(dport=80), packet_id=0),
            Packet(payload=b"\xde\xad\xbe\xef", header=header(dport=1234), packet_id=1),
        ]
        alerts = ids.process(packets)
        assert {(a.packet_id, a.sid) for a in alerts} == {(0, 101), (1, 102)}

    def test_from_specs_sid_collisions_load(self):
        # colliding and missing sids must not trip the duplicate-sid check:
        # first claimant keeps the sid, others get fresh non-reserved ones
        specs = parse_rules([
            'alert tcp any any -> any any (content:"auto-rule";)',
            'alert tcp any any -> any any (content:"first"; sid:1;)',
            'alert tcp any any -> any any (content:"second"; sid:1;)',
        ])
        remap = {}
        ids = IntrusionDetectionSystem.from_specs(specs, sid_remap=remap)
        by_content = {rule.contents[0]: sid for sid, rule in ids.rules.items()}
        assert by_content[b"first"] == 1
        assert by_content[b"auto-rule"] == 2
        assert by_content[b"second"] == 3
        assert remap == {3: 1}

    def test_from_specs_reserves_contentless_rules_sids(self):
        # a content-less rule is skipped, but its explicit sid must stay
        # off-limits so alert sids never point at an unrelated rule
        specs = parse_rules([
            'alert tcp any any -> any any (msg:"metadata only"; sid:1;)',
            'alert tcp any any -> any any (content:"first"; sid:5;)',
            'alert tcp any any -> any any (content:"second"; sid:5;)',
        ])
        ids = IntrusionDetectionSystem.from_specs(specs)
        by_content = {rule.contents[0]: sid for sid, rule in ids.rules.items()}
        assert by_content[b"first"] == 5
        assert by_content[b"second"] == 2  # not 1 — that sid is claimed

    def test_validation(self):
        with pytest.raises(ValueError):
            IntrusionDetectionSystem([])
        with pytest.raises(ValueError):
            IDSRule(sid=1, header=HeaderPattern(), contents=())
        rules = self._rules() + [IDSRule(sid=1, header=HeaderPattern(), contents=(b"dup",))]
        with pytest.raises(ValueError):
            IntrusionDetectionSystem(rules)
