"""Shared-memory shard transport: ring mechanics and scan equivalence.

The unit tests drive :class:`ShardRing` directly through its dispatcher and
worker ends in one process; the equivalence tests force pathological ring
geometries (wraparound every few segments, universal spill, constant
backpressure) through :func:`assert_equivalent_events` to prove the
transport never changes what the scan reports — only how the bytes travel.
"""

from __future__ import annotations

import pytest

from repro.streaming import ParallelScanService, ShardRing, TransportError
from repro.streaming.transport import (
    DEFAULT_RING_SLOT_BYTES,
    DEFAULT_RING_SLOTS,
    SLOT_HEADER_BYTES,
    SlotOversizeError,
)


# ----------------------------------------------------------------------
# ring mechanics (single process, both ends)
# ----------------------------------------------------------------------
def read_bytes(ring: ShardRing):
    """Worker-end read, copied out and released (views pin the segment)."""
    flow_id, view = ring.read()
    try:
        return flow_id, bytes(view)
    finally:
        view.release()


def ring_pair(slots: int, slot_bytes: int):
    """One segment, both ends: the dispatcher (owner) and an attached
    worker end, each with its own sequence cursor — as in the executor."""
    writer = ShardRing(slots=slots, slot_bytes=slot_bytes)
    reader = ShardRing(slots, slot_bytes, name=writer.name)
    return writer, reader


def test_ring_round_trips_payloads_in_order():
    writer, reader = ring_pair(slots=4, slot_bytes=32)
    with writer, reader:
        for index in range(3):
            assert writer.try_write(index, bytes([index]) * (index + 1))
        assert writer.pending == 3
        for index in range(3):
            assert read_bytes(reader) == (index, bytes([index]) * (index + 1))
        writer.consumed(3)
        assert writer.pending == 0


def test_ring_wraparound_many_cycles():
    """Write/read far past ``slots`` so every slot is reused repeatedly."""
    writer, reader = ring_pair(slots=3, slot_bytes=16)
    with writer, reader:
        for index in range(20):
            payload = index.to_bytes(2, "big") * 5
            assert writer.try_write(index, payload)
            assert read_bytes(reader) == (index, payload)
            writer.consumed(1)
        assert writer.pending == 0


def test_ring_slot_exactly_full_boundary():
    writer, reader = ring_pair(slots=2, slot_bytes=8)
    with writer, reader:
        assert writer.try_write(1, b"x" * 8)  # exactly slot_bytes fits
        assert read_bytes(reader) == (1, b"x" * 8)
        writer.consumed(1)
        with pytest.raises(SlotOversizeError, match="9 bytes exceeds the 8-byte"):
            writer.try_write(2, b"x" * 9)
        assert writer.try_write(3, b"")  # empty payload is legal
        assert read_bytes(reader) == (3, b"")


def test_ring_full_signals_backpressure():
    writer, reader = ring_pair(slots=2, slot_bytes=8)
    with writer, reader:
        assert writer.try_write(1, b"a")
        assert writer.try_write(2, b"b")
        assert not writer.try_write(3, b"c")  # full: backpressure, not an error
        read_bytes(reader), read_bytes(reader)
        writer.consumed(1)
        assert writer.try_write(3, b"c")  # one slot freed, one write fits
        assert not writer.try_write(4, b"d")


def test_ring_detects_out_of_sequence_reads():
    writer, reader = ring_pair(slots=2, slot_bytes=8)
    with writer, reader:
        writer.try_write(1, b"a")
        read_bytes(reader)
        with pytest.raises(TransportError, match="out of sequence"):
            reader.read()  # nothing written yet at the next sequence


def test_ring_overacknowledge_raises():
    with ShardRing(slots=2, slot_bytes=8) as ring:
        ring.try_write(1, b"a")
        with pytest.raises(TransportError, match="only 1"):
            ring.consumed(2)


def test_ring_attach_reads_what_owner_wrote():
    with ShardRing(slots=2, slot_bytes=16) as ring:
        ring.try_write(7, b"payload")
        with ShardRing(2, 16, name=ring.name) as reader:
            assert not reader.owner
            assert read_bytes(reader) == (7, b"payload")
        ring.consumed(1)


def test_ring_attach_checks_segment_size():
    with ShardRing(slots=2, slot_bytes=16) as ring:
        with pytest.raises(TransportError, match="expected at least"):
            ShardRing(64, 4096, name=ring.name)


def test_ring_close_is_idempotent():
    ring = ShardRing(slots=1, slot_bytes=8)
    ring.close()
    ring.close()


def test_ring_rejects_degenerate_geometry():
    with pytest.raises(ValueError):
        ShardRing(slots=0, slot_bytes=8)
    with pytest.raises(ValueError):
        ShardRing(slots=1, slot_bytes=0)


# ----------------------------------------------------------------------
# transport equivalence under forced ring geometries
# ----------------------------------------------------------------------
GEOMETRIES = [
    pytest.param({"ring_slots": 3}, "backpressure_stalls", id="wraparound"),
    pytest.param({"ring_slot_bytes": 64}, "spilled_segments", id="all-spill"),
    pytest.param({"ring_slots": 4, "ring_slot_bytes": 700}, "ring_segments",
                 id="mixed-spill-and-ring"),
]


@pytest.mark.parametrize("geometry, exercised", GEOMETRIES)
def test_pathological_rings_keep_events_canonical(geometry, exercised):
    """Tiny rings force wraparound/spill/backpressure on every chunk; the
    event stream, shard reports and gauges must not notice."""
    from tests.conftest import assert_equivalent_events, build_program, equivalence_workload

    ruleset, packets = equivalence_workload(seed=17)
    reference = assert_equivalent_events(
        ruleset,
        packets,
        backends=("dtp", "dense"),
        worker_counts=(None, 2, 4),
        sources=("memory",),
        num_shards=4,
        parallel_kwargs=geometry,
    )
    assert reference.events, "workload produced no events; equivalence is vacuous"

    # the geometry actually exercised the path it claims to (counter > 0)
    program = build_program(ruleset, "dense")
    with ParallelScanService(program, num_shards=4, workers=2, **geometry) as service:
        service.scan(packets)
        counters = service.transport_stats.as_dict()
    assert counters[exercised] > 0, counters
    # spilled segments never ride the ring and vice versa
    assert counters["ring_segments"] + counters["spilled_segments"] == len(packets)


def test_transport_stats_surface_in_service_stats():
    from tests.conftest import build_program, equivalence_workload

    ruleset, packets = equivalence_workload(seed=23)
    program = build_program(ruleset, "dense")
    with ParallelScanService(program, num_shards=2, workers=2) as service:
        service.scan(packets)
        stats = service.stats()
    transport = stats["transport"]
    assert transport["ring_segments"] == len(packets)
    assert transport["spilled_segments"] == 0
    assert transport["ring_bytes"] == sum(len(p.payload) for p in packets)
    assert transport["chunks"] >= 2  # at least one chunk per worker


def test_default_geometry_fits_typical_segments():
    """The default slot comfortably holds an MTU-sized payload with header."""
    assert DEFAULT_RING_SLOT_BYTES >= 1500
    assert DEFAULT_RING_SLOTS * (SLOT_HEADER_BYTES + DEFAULT_RING_SLOT_BYTES) < 2**20
