"""Two-stage rule semantics: the confirm stage and its full grammar.

Three layers of coverage:

* :class:`TestPredicateGrammar` — the parser's positional modifiers,
  negation, pcre, and the grammar errors that must be rejected in both
  strict and lenient modes;
* :class:`TestRuleEvaluator` / :class:`TestPipeline` — unit semantics of
  window evaluation (backtracking, negation decision points, pcre) and the
  stateful pipeline behaviours built on them (cross-segment windows,
  end-of-flow finalisation, eviction, checkpoint/restore, nocase end to
  end);
* :class:`TestDifferential` — randomized full-grammar rulesets scanned
  through every {backend} × {serial, workers} × {memory, pcap} combination
  must produce the naive reference evaluator's exact alert sequence.
"""

import io

import pytest

from repro.api import (
    EngineSpec,
    PipelineConfig,
    RulesSpec,
    Session,
    SourceSpec,
)
from repro.capture import replay_ids, write_packets
from repro.ids import IntrusionDetectionSystem, RuleEvaluator
from repro.rulesets import (
    RuleParseError,
    generate_snort_like_ruleset,
    parse_rule,
    parse_rules,
)
from repro.traffic import FiveTuple, Packet, TrafficGenerator

from tests.conftest import (
    assert_equivalent_alerts,
    naive_reference_alerts,
    naive_rule_match,
    random_predicate_rules,
    renumbered,
)

WILDCARD = "alert ip any any -> any any "


def _flow(payloads, src_port=1111, start_id=0):
    header = FiveTuple(
        src_ip="10.0.0.1",
        dst_ip="10.0.0.2",
        src_port=src_port,
        dst_port=80,
        protocol="tcp",
    )
    return [
        Packet(payload=payload, header=header, packet_id=start_id + index)
        for index, payload in enumerate(payloads)
    ]


def _alert_pairs(alerts):
    return [(alert.packet_id, alert.sid) for alert in alerts]


# ----------------------------------------------------------------------
# parser grammar
# ----------------------------------------------------------------------
class TestPredicateGrammar:
    def test_positional_modifiers_parsed(self):
        spec = parse_rule(
            WILDCARD + '(content:"GET"; offset:0; depth:4; '
            'content:"HTTP"; distance:1; within:300; sid:1;)'
        )
        first, second = spec.contents
        assert (first.offset, first.depth) == (0, 4)
        assert (second.distance, second.within) == (1, 300)
        assert not first.is_relative and second.is_relative

    def test_negated_content_parsed(self):
        spec = parse_rule(
            WILDCARD + '(content:"POST"; content:!"Content-Length"; sid:1;)'
        )
        assert [c.negated for c in spec.contents] == [False, True]
        assert [c.pattern for c in spec.positive_contents] == [b"POST"]

    def test_pcre_parsed_with_flags_and_negation(self):
        spec = parse_rule(
            WILDCARD + '(content:"cmd"; pcre:"/GET[^x]*cmd/i"; '
            'pcre:!"/quit/"; sid:1;)'
        )
        positive, negated = spec.pcres
        assert positive.pattern == "GET[^x]*cmd" and positive.flags == "i"
        assert negated.negated and not positive.negated
        assert positive.compile().search(b"GET /a/cmd") is not None

    def test_pcre_body_may_contain_escaped_delimiter(self):
        spec = parse_rule(WILDCARD + '(content:"a"; pcre:"/a\\/b/"; sid:1;)')
        assert spec.pcres[0].compile().search(b"xa/by") is not None

    def test_duplicate_modifier_rejected(self):
        with pytest.raises(RuleParseError, match="duplicate depth"):
            parse_rule(WILDCARD + '(content:"a"; depth:4; depth:5; sid:1;)')

    def test_conflicting_anchoring_rejected(self):
        with pytest.raises(RuleParseError, match="conflicts with"):
            parse_rule(
                WILDCARD + '(content:"a"; content:"b"; distance:1; offset:2; '
                "sid:1;)"
            )

    def test_relative_modifier_on_first_content_rejected(self):
        with pytest.raises(RuleParseError, match="no previous match"):
            parse_rule(WILDCARD + '(content:"a"; distance:1; sid:1;)')

    def test_relative_after_only_negated_contents_rejected(self):
        with pytest.raises(RuleParseError, match="no previous match"):
            parse_rule(
                WILDCARD + '(content:!"a"; content:"b"; within:4; sid:1;)'
            )

    def test_grammar_errors_are_line_anchored(self):
        lines = [
            WILDCARD + '(content:"ok"; sid:1;)',
            WILDCARD + '(content:"bad"; within:3; sid:2;)',
        ]
        with pytest.raises(RuleParseError, match="line 2:"):
            parse_rules(lines)

    def test_lenient_keeps_unsupported_options_strict_rejects(self):
        line = WILDCARD + '(content:"a"; flow:to_server; sid:1;)'
        spec = parse_rule(line)
        assert spec.unparsed_options == [("flow", "to_server")]
        with pytest.raises(RuleParseError, match="unsupported option 'flow'"):
            parse_rule(line, strict=True)

    def test_strict_rejects_all_negated_rule(self):
        line = WILDCARD + '(content:!"a"; sid:1;)'
        assert parse_rule(line).positive_contents == []
        with pytest.raises(RuleParseError, match="no positive"):
            parse_rule(line, strict=True)


# ----------------------------------------------------------------------
# evaluator semantics (driven through the end-to-end pipeline, single flow)
# ----------------------------------------------------------------------
def _ids_for(lines, **kwargs):
    return IntrusionDetectionSystem.from_specs(
        parse_rules(lines), backend="dense", **kwargs
    )


class TestRuleEvaluator:
    def test_chain_backtracks_past_greedy_earliest_occurrence(self):
        """The first "ab" is too early for "cd"'s within-window; only the
        second anchors the chain.  A greedy earliest-match evaluator fails
        this rule; the backtracking one must not."""
        lines = [
            WILDCARD + '(content:"ab"; content:"cd"; distance:0; within:4; '
            "sid:1;)"
        ]
        packets = _flow([b"abXXXXXXabYcd"])
        with _ids_for(lines) as ids:
            alerts = ids.scan_flow(packets) + ids.finish()
        assert _alert_pairs(alerts) == [(0, 1)]
        assert naive_rule_match(parse_rules(lines)[0], b"abXXXXXXabYcd", True)

    def test_offset_depth_window_enforced(self):
        lines = [WILDCARD + '(content:"GET"; offset:0; depth:4; sid:1;)']
        with _ids_for(lines) as ids:
            hit = ids.scan_flow(_flow([b"GET /x"])) + ids.finish()
        with _ids_for(lines) as ids:
            miss = ids.scan_flow(_flow([b"..GET /x"])) + ids.finish()
        assert _alert_pairs(hit) == [(0, 1)] and miss == []

    def test_bounded_negation_decides_mid_stream(self):
        """A depth/within-bounded negation window is decided as soon as the
        stream has passed its end — no flow finalisation needed."""
        lines = [
            WILDCARD + '(content:"ab"; content:!"zz"; distance:0; within:4; '
            "sid:1;)"
        ]
        with _ids_for(lines) as ids:
            alerts = ids.scan_flow(_flow([b"ab....", b"more"]))
        # alert raised by scan_flow itself, before finish()
        assert _alert_pairs(alerts) == [(0, 1)]

    def test_unbounded_negation_waits_for_flow_end(self):
        lines = [WILDCARD + '(content:"ab"; content:!"zz"; sid:1;)']
        with _ids_for(lines) as ids:
            mid = ids.scan_flow(_flow([b"ab..", b"...."]))
            final = ids.finish()
        assert mid == []
        assert _alert_pairs(final) == [(1, 1)]  # attributed to last packet

    def test_negation_occupied_window_suppresses(self):
        lines = [WILDCARD + '(content:"ab"; content:!"zz"; sid:1;)']
        with _ids_for(lines) as ids:
            alerts = ids.scan_flow(_flow([b"ab..", b".zz."])) + ids.finish()
        assert alerts == []

    def test_positive_pcre_confirms_and_rejects(self):
        lines = [WILDCARD + '(content:"cmd"; pcre:"/GET[^;]*cmd/"; sid:1;)']
        with _ids_for(lines) as ids:
            hit = ids.scan_flow(_flow([b"GET /a/cmd"])) + ids.finish()
        with _ids_for(lines) as ids:
            miss = ids.scan_flow(_flow([b"PUT /a/cmd"])) + ids.finish()
        assert _alert_pairs(hit) == [(0, 1)] and miss == []

    def test_negated_pcre_only_provable_at_flow_end(self):
        lines = [WILDCARD + '(content:"ab"; pcre:!"/quit/"; sid:1;)']
        with _ids_for(lines) as ids:
            mid = ids.scan_flow(_flow([b"ab.."]))
            final = ids.finish()
        assert mid == [] and _alert_pairs(final) == [(0, 1)]

    def test_evaluator_exported(self):
        spec = parse_rule(WILDCARD + '(content:"ab"; sid:7;)')
        evaluator = RuleEvaluator(7, spec.predicate, {b"ab": 0})
        assert evaluator.plain and not evaluator.requires_end


# ----------------------------------------------------------------------
# stateful pipeline behaviours
# ----------------------------------------------------------------------
class TestPipeline:
    def test_window_spans_segment_boundary(self):
        """Absolute offsets survive reassembly: the chain completes on the
        packet where the second content's bytes arrive."""
        lines = [
            WILDCARD + '(content:"GET"; offset:0; depth:4; '
            'content:"HTTP"; distance:0; within:40; sid:1;)'
        ]
        packets = _flow([b"GET /index.h", b"tml HTTP/1.1"])
        with _ids_for(lines) as ids:
            alerts = ids.scan_flow(packets) + ids.finish()
        assert _alert_pairs(alerts) == [(1, 1)]

    def test_split_pattern_occurrence_positions_are_absolute(self):
        lines = [WILDCARD + '(content:"needle"; offset:4; sid:1;)']
        packets = _flow([b"xxxxnee", b"dle"])
        with _ids_for(lines) as ids:
            alerts = ids.scan_flow(packets) + ids.finish()
        assert _alert_pairs(alerts) == [(1, 1)]

    def test_eviction_finalizes_negation_rules(self):
        """With a 1-slot flow table, flow A's eviction (by flow B's arrival)
        decides A's unbounded negation mid-scan, attributed to A's last
        packet seen before eviction."""
        lines = [WILDCARD + '(content:"ab"; content:!"zz"; sid:1;)']
        packets = (
            _flow([b"ab.."], src_port=1111, start_id=0)
            + _flow([b"....ab"], src_port=2222, start_id=1)
            + _flow([b"...."], src_port=1111, start_id=2)
        )
        with _ids_for(lines) as ids:
            alerts = ids.scan_flow(packets)
            ids.reset_flows(capacity=1)
            alerts = ids.scan_flow(packets)
            final = ids.finish()
        # flow 1111 evicted when 2222 arrives -> negation decided at packet 0;
        # the second eviction (2222 out, 1111 back in) decides 2222 at its
        # only packet.  The re-started 1111 flow carries no positive content,
        # so finish() has nothing left to decide.
        assert _alert_pairs(alerts) == [(0, 1), (1, 1)]
        assert final == []

    def test_nocase_rule_alerts_on_mixed_case_flow(self):
        """The end-to-end nocase lock test: a nocase content stored
        lower-cased must match a mixed-case payload through the stateful
        scan path (the prefilter's lowered view), not just process()."""
        lines = [WILDCARD + '(content:"CMD.exe"; nocase; sid:1;)']
        packets = _flow([b"run CmD.", b"ExE now"])
        with _ids_for(lines) as ids:
            serial = ids.scan_flow(packets) + ids.finish()
        with _ids_for(lines, workers=2) as ids:
            parallel = ids.scan_flow(packets) + ids.finish()
        assert _alert_pairs(serial) == [(1, 1)]
        assert _alert_pairs(parallel) == [(1, 1)]

    def test_nocase_rules_file_scans_through_session(self, tmp_path):
        """Lock for the Session wiring bug: the sharded scan service must be
        built with nocase tracking whenever the loaded rules need it."""
        rules = tmp_path / "nocase.rules"
        rules.write_text(WILDCARD + '(content:"CMD.exe"; nocase; sid:1;)\n')
        packets = tuple(_flow([b"run CmD.ExE now"]))
        config = PipelineConfig(
            mode="stream",
            source=SourceSpec(kind="packets", packets=packets),
            rules=RulesSpec(kind="file", path=str(rules)),
            engine=EngineSpec(backend="dense"),
        )
        with Session.from_config(config) as session:
            result = session.scan()
            assert len(result.events) == 1
            alerts = session.ids.scan_flow(list(packets)) + session.ids.finish()
        assert _alert_pairs(alerts) == [(0, 1)]

    def test_process_decides_per_packet(self):
        """process() is the stateless path: each packet is a complete flow,
        so negation and pcre are decided immediately (at_end semantics)."""
        lines = [WILDCARD + '(content:"ab"; content:!"zz"; sid:1;)']
        packets = _flow([b"ab..", b"ab.zz"])
        with _ids_for(lines) as ids:
            alerts = ids.process(packets)
        assert _alert_pairs(alerts) == [(0, 1)]

    def test_checkpoint_restore_resumes_confirm_state(self):
        """Splitting a flow across checkpoint/restore must not change the
        alerts: positions, pcre buffers and negation candidacy all travel."""
        lines = [
            WILDCARD + '(content:"GET"; offset:0; depth:4; '
            'content:"HTTP"; distance:0; within:40; sid:1;)',
            WILDCARD + '(content:"ab"; content:!"zz"; sid:2;)',
            WILDCARD + '(content:"cmd"; pcre:"/GET[^;]*cmd/"; sid:3;)',
        ]
        packets = _flow([b"GET /ab", b" HTTP/1.1 cmd"])
        with _ids_for(lines) as reference:
            expected = _alert_pairs(
                reference.scan_flow(packets) + reference.finish()
            )
        with _ids_for(lines) as first:
            early = first.scan_flow(packets[:1])
            saved = first.checkpoint()
        with _ids_for(lines) as second:
            second.restore(saved)
            late = second.scan_flow(packets[1:]) + second.finish()
        assert _alert_pairs(early) + _alert_pairs(late) == expected

    def test_parallel_checkpoint_refused(self):
        lines = [WILDCARD + '(content:"ab"; sid:1;)']
        with _ids_for(lines, workers=2) as ids:
            with pytest.raises(ValueError, match="parallel"):
                ids.checkpoint()
            with pytest.raises(ValueError, match="parallel"):
                ids.restore({"flows": {}, "confirm": {"flows": []}})


# ----------------------------------------------------------------------
# differential gate against the naive reference
# ----------------------------------------------------------------------
class TestDifferential:
    @pytest.mark.parametrize("seed", [11, 29, 47])
    def test_randomized_predicates_match_naive_reference(self, seed):
        ruleset = generate_snort_like_ruleset(18, seed=seed)
        generator = TrafficGenerator(ruleset, seed=seed + 1)
        packets = TrafficGenerator.interleave(
            generator.flows(5, num_packets=3, split_patterns=1, whole_patterns=2)
        )
        specs = random_predicate_rules(ruleset, seed=seed, num_rules=10)
        expected = assert_equivalent_alerts(specs, packets)
        # the workload must actually exercise the confirm stage: traffic is
        # built from the same patterns the rules window over
        assert expected, "workload produced no alerts; weaken the windows"

    def test_handcrafted_mixed_grammar_matches_naive_reference(self):
        lines = [
            WILDCARD + '(content:"GET"; offset:0; depth:4; '
            'content:"HTTP"; distance:0; within:40; sid:1;)',
            WILDCARD + '(content:"POST"; content:!"Length"; sid:2;)',
            WILDCARD + '(content:"CMD"; nocase; pcre:"/cmd$/i"; sid:3;)',
            WILDCARD + '(content:"ab"; content:"cd"; distance:0; within:4; '
            "sid:4;)",
        ]
        specs = parse_rules(lines)
        packets = (
            _flow([b"GET /abXXXXXXabYcd ", b"HTTP/1.1"], src_port=1000)
            + _flow([b"POST /x", b"..."], src_port=2000, start_id=2)
            + _flow([b"POST Length", b"..."], src_port=3000, start_id=4)
            + _flow([b"run cMd"], src_port=4000, start_id=6)
        )
        expected = assert_equivalent_alerts(specs, packets)
        assert {sid for _, sid in expected} == {1, 2, 3, 4}

    def test_pcap_replay_equals_memory_scan(self):
        """replay_ids over a written capture is one of the harness axes, but
        lock the alert list shape explicitly for a single combination."""
        lines = [WILDCARD + '(content:"ab"; content:!"zz"; sid:5;)']
        specs = parse_rules(lines)
        packets = renumbered(_flow([b"ab..", b"...."]))
        buffer = io.BytesIO()
        write_packets(buffer, packets)
        with IntrusionDetectionSystem.from_specs(specs, backend="dtp") as ids:
            alerts = replay_ids(io.BytesIO(buffer.getvalue()), ids)
        assert _alert_pairs(alerts) == naive_reference_alerts(specs, packets)
